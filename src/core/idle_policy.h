// Scrub scheduling policies (Sec V-B): decide, at the start of each idle
// interval, whether and when to start firing scrub requests. Once firing
// starts it continues until the next foreground arrival -- the paper shows
// decreasing hazard rates make a stopping criterion unnecessary.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sim/time.h"
#include "stats/acd_model.h"
#include "stats/ar_model.h"

namespace pscrub::core {

class IdlePolicy {
 public:
  virtual ~IdlePolicy() = default;

  /// Called at the start of an idle interval. Returns the offset into the
  /// interval at which to start scrubbing, or nullopt to skip the interval
  /// entirely.
  virtual std::optional<SimTime> decide() = 0;

  /// Feeds the true duration of the just-finished idle interval.
  virtual void observe(SimTime idle) = 0;

  virtual const char* name() const = 0;

  /// Clairvoyant policies (Oracle) get the true interval length.
  virtual bool clairvoyant() const { return false; }
  virtual std::optional<SimTime> decide_clairvoyant(SimTime /*actual*/) {
    return decide();
  }

  /// Lossless Waiting: a hypothetical policy that picks intervals like
  /// Waiting but magically also uses the time spent waiting (Sec V-B's
  /// diagnostic). The simulator credits the full interval as utilized.
  virtual bool lossless() const { return false; }

  /// Optional stopping criterion: maximum firing time per idle interval
  /// (0 = fire until the next arrival, the paper's recommendation). Prior
  /// work (Golding et al., Mi et al.) pairs a start criterion with a stop
  /// criterion; the paper argues decreasing hazard rates make stopping
  /// counterproductive -- modelled here so that claim can be tested.
  virtual SimTime fire_budget() const { return 0; }
};

/// Waiting(t): fire after the system has been idle for t.
class WaitingPolicy : public IdlePolicy {
 public:
  explicit WaitingPolicy(SimTime threshold) : threshold_(threshold) {}
  std::optional<SimTime> decide() override { return threshold_; }
  void observe(SimTime) override {}
  const char* name() const override { return "waiting"; }
  SimTime threshold() const { return threshold_; }

 private:
  SimTime threshold_;
};

/// Lossless Waiting(t): same captured intervals, waiting time not wasted.
class LosslessWaitingPolicy final : public WaitingPolicy {
 public:
  explicit LosslessWaitingPolicy(SimTime threshold)
      : WaitingPolicy(threshold) {}
  bool lossless() const override { return true; }
  const char* name() const override { return "lossless-waiting"; }
};

/// AR(c): predict the current interval's length with an online AR(p) model
/// over previous idle durations; fire immediately if the prediction
/// exceeds c.
class ArPolicy : public IdlePolicy {
 public:
  explicit ArPolicy(SimTime prediction_threshold, std::size_t window = 4096,
                    std::size_t refit_every = 512, std::size_t max_order = 10)
      : threshold_(prediction_threshold),
        predictor_(window, refit_every, max_order) {}

  std::optional<SimTime> decide() override {
    const double pred_s = predictor_.predict();
    if (from_seconds(pred_s) > threshold_) return SimTime{0};
    return std::nullopt;
  }

  void observe(SimTime idle) override {
    predictor_.observe(to_seconds(idle));
  }

  const char* name() const override { return "auto-regression"; }
  const stats::OnlineArPredictor& predictor() const { return predictor_; }

 protected:
  SimTime threshold_;
  stats::OnlineArPredictor predictor_;
};

/// AR(c)+Waiting(t): wait t, then fire only if the AR prediction for this
/// interval exceeded c.
class ArWaitingPolicy final : public ArPolicy {
 public:
  ArWaitingPolicy(SimTime wait_threshold, SimTime prediction_threshold)
      : ArPolicy(prediction_threshold), wait_(wait_threshold) {}

  std::optional<SimTime> decide() override {
    if (ArPolicy::decide().has_value()) return wait_;
    return std::nullopt;
  }

  const char* name() const override { return "ar+waiting"; }

 private:
  SimTime wait_;
};

/// ACD(1,1)-based predictor (Engle & Russell): fire immediately when the
/// conditional expected duration psi exceeds c. The paper tried ACD and
/// rejected it on fitting cost; this implementation refits on a bounded
/// window so the comparison (quality AND cost) can be made directly.
class AcdPolicy final : public IdlePolicy {
 public:
  explicit AcdPolicy(SimTime threshold, std::size_t window = 1024,
                     std::size_t refit_every = 512)
      : threshold_(threshold), window_(window), refit_every_(refit_every) {}

  std::optional<SimTime> decide() override {
    double pred;
    if (model_.fitted && !history_.empty()) {
      const std::size_t take = std::min<std::size_t>(history_.size(), 64);
      pred = model_.forecast(
          std::span<const double>(history_.data() + history_.size() - take,
                                  take));
    } else if (!history_.empty()) {
      pred = sum_ / static_cast<double>(history_.size());
    } else {
      return std::nullopt;
    }
    if (from_seconds(pred) > threshold_) return SimTime{0};
    return std::nullopt;
  }

  void observe(SimTime idle) override {
    const double s = to_seconds(idle);
    history_.push_back(s);
    sum_ += s;
    ++since_fit_;
    if (history_.size() > 2 * window_) {
      double dropped = 0.0;
      for (std::size_t i = 0; i + window_ < history_.size(); ++i) {
        dropped += history_[i];
      }
      sum_ -= dropped;
      history_.erase(history_.begin(),
                     history_.end() - static_cast<std::ptrdiff_t>(window_));
    }
    if (history_.size() >= 64 &&
        (since_fit_ >= refit_every_ || !model_.fitted)) {
      const std::size_t take = std::min(history_.size(), window_);
      model_ = stats::fit_acd(
          std::span<const double>(history_.data() + history_.size() - take,
                                  take),
          /*max_iters=*/8, &fit_stats_);
      since_fit_ = 0;
    }
  }

  const char* name() const override { return "acd"; }
  const stats::AcdFitStats& fit_stats() const { return fit_stats_; }

 private:
  SimTime threshold_;
  std::size_t window_;
  std::size_t refit_every_;
  std::size_t since_fit_ = 0;
  std::vector<double> history_;
  double sum_ = 0.0;
  stats::AcdModel model_;
  stats::AcdFitStats fit_stats_;
};

/// Waiting(t) with a stopping criterion: fire for at most `budget` per
/// interval (the start/stop structure of prior background-scheduling work
/// [7], [8]). Exists to demonstrate the paper's point that with
/// decreasing hazard rates a stop criterion only forfeits idle time.
class DualThresholdPolicy final : public WaitingPolicy {
 public:
  DualThresholdPolicy(SimTime start_threshold, SimTime budget)
      : WaitingPolicy(start_threshold), budget_(budget) {}
  SimTime fire_budget() const override { return budget_; }
  const char* name() const override { return "dual-threshold"; }

 private:
  SimTime budget_;
};

/// Moving-average predictor (a simple Golding-style idleness estimator):
/// fire immediately if the mean of the last `window` idle durations
/// exceeds c. Cheaper than AR but blinder to short-term structure.
class MovingAveragePolicy final : public IdlePolicy {
 public:
  explicit MovingAveragePolicy(SimTime threshold, std::size_t window = 32)
      : threshold_(threshold), window_(window) {}

  std::optional<SimTime> decide() override {
    if (count_ == 0) return std::nullopt;
    const double mean = sum_ / static_cast<double>(count_);
    if (from_seconds(mean) > threshold_) return SimTime{0};
    return std::nullopt;
  }

  void observe(SimTime idle) override {
    const double s = to_seconds(idle);
    recent_.push_back(s);
    sum_ += s;
    ++count_;
    if (recent_.size() > window_) {
      sum_ -= recent_.front();
      recent_.erase(recent_.begin());
      --count_;
    }
  }

  const char* name() const override { return "moving-average"; }

 private:
  SimTime threshold_;
  std::size_t window_;
  std::vector<double> recent_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Oracle(L): clairvoyantly utilizes exactly the intervals longer than L,
/// from their very beginning -- the upper bound of Fig 14.
class OraclePolicy final : public IdlePolicy {
 public:
  explicit OraclePolicy(SimTime min_length) : min_length_(min_length) {}

  bool clairvoyant() const override { return true; }
  std::optional<SimTime> decide_clairvoyant(SimTime actual) override {
    if (actual >= min_length_) return SimTime{0};
    return std::nullopt;
  }
  std::optional<SimTime> decide() override { return std::nullopt; }
  void observe(SimTime) override {}
  const char* name() const override { return "oracle"; }
  bool lossless() const override { return true; }

 private:
  SimTime min_length_;
};

}  // namespace pscrub::core
