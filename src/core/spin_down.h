// Idle-time power management: the paper's conclusion proposes applying
// the Waiting insight beyond scrubbing -- "contributing to power savings
// in data centers (e.g. by spinning disks down)".
//
// SpinDownDaemon is the Waiting policy with a different payload: once the
// disk has been idle past the threshold, spin it down; the next command
// pays the spin-up. The same statistics that make Waiting a good scrub
// trigger (decreasing hazard rates, heavy-tailed idle) make it a good
// spin-down trigger: long-idle disks stay idle long enough to amortize
// the spin-up cost.
#pragma once

#include <cstdint>

#include "block/block_layer.h"
#include "sim/simulator.h"

namespace pscrub::core {

struct SpinDownStats {
  std::int64_t spin_downs = 0;
};

class SpinDownDaemon {
 public:
  SpinDownDaemon(Simulator& sim, block::BlockLayer& blk,
                 SimTime wait_threshold);
  ~SpinDownDaemon() { stop(); }
  SpinDownDaemon(const SpinDownDaemon&) = delete;
  SpinDownDaemon& operator=(const SpinDownDaemon&) = delete;

  /// Begins watching the block layer's idleness. Replaces any idle
  /// observer previously registered there.
  void start();
  void stop();

  const SpinDownStats& stats() const { return stats_; }
  SimTime wait_threshold() const { return wait_threshold_; }
  void set_wait_threshold(SimTime t) { wait_threshold_ = t; }

 private:
  void on_idle();
  void check();

  Simulator& sim_;
  block::BlockLayer& blk_;
  SimTime wait_threshold_;
  SpinDownStats stats_;
  bool running_ = false;
  bool armed_ = false;
  EventId arm_event_ = 0;
};

}  // namespace pscrub::core
