#include "core/policy_sim.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::core {

void PolicySimResult::export_to(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".foreground_requests") += foreground_requests;
  registry.counter(prefix + ".collisions") += collisions;
  registry.counter(prefix + ".scrub_requests") += scrub_requests;
  registry.counter(prefix + ".scrubbed_bytes") += scrubbed_bytes;
  registry.gauge(prefix + ".collision_rate").set(collision_rate);
  registry.gauge(prefix + ".idle_utilization").set(idle_utilization);
  registry.gauge(prefix + ".total_idle_ms").set(to_milliseconds(total_idle));
  registry.gauge(prefix + ".idle_utilized_ms")
      .set(to_milliseconds(idle_utilized));
  registry.gauge(prefix + ".scrub_mb_s").set(scrub_mb_s);
  registry.gauge(prefix + ".mean_slowdown_ms").set(mean_slowdown_ms);
  registry.gauge(prefix + ".slowdown_max_ms")
      .set(to_milliseconds(slowdown_max));
}

namespace {

/// Policy that never scrubs; used for baselines.
class NeverPolicy final : public IdlePolicy {
 public:
  std::optional<SimTime> decide() override { return std::nullopt; }
  void observe(SimTime) override {}
  const char* name() const override { return "never"; }
};

/// Derives the double-valued summary stats from the integer accumulators.
/// Shared by the reference replay and the batched evaluator so the two
/// paths perform the exact same floating-point operations on the exact
/// same integer operands -- the bit-identity contract extends to doubles.
void finish_stats(PolicySimResult& out, SimTime window_end) {
  if (out.foreground_requests > 0) {
    out.collision_rate = static_cast<double>(out.collisions) /
                         static_cast<double>(out.foreground_requests);
    out.mean_slowdown_ms = to_milliseconds(out.slowdown_sum) /
                           static_cast<double>(out.foreground_requests);
  }
  if (out.total_idle > 0) {
    out.idle_utilization = static_cast<double>(out.idle_utilized) /
                           static_cast<double>(out.total_idle);
  }
  if (window_end > 0) {
    out.scrub_mb_s = static_cast<double>(out.scrubbed_bytes) / 1e6 /
                     to_seconds(window_end);
  }
}

}  // namespace

PolicySimResult run_policy_sim_reference(const trace::Trace& trace,
                                         IdlePolicy& policy,
                                         const PolicySimConfig& config) {
  PolicySimResult out;
  out.foreground_requests = static_cast<std::int64_t>(trace.records.size());
  if (config.keep_response_samples) {
    out.response_seconds.reserve(trace.records.size());
    out.baseline_response_seconds.reserve(trace.records.size());
  }

  SimTime busy = 0;       // with-scrub completion frontier
  SimTime base_busy = 0;  // baseline (no scrub) frontier
  ScrubSizer sizer = config.sizer;
  assert(config.services == nullptr ||
         config.services->size() == trace.records.size());

  // Hoisted so the (very hot) per-record loop branches on a local bool.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool traced = tracer.enabled();

  // Timeline series resolved once up front; `tl` doubles as the hoisted
  // enabled flag. Scrub activity is emitted at burst granularity (one
  // add_span per idle interval, not per verify), so the timeline adds
  // nothing measurable to the per-record cost.
  obs::Timeline* tl =
      config.timeline.enabled() ? config.timeline.timeline : nullptr;
  obs::Timeline::SeriesId tl_fg = 0;
  obs::Timeline::SeriesId tl_coll = 0;
  obs::Timeline::SeriesId tl_mb = 0;
  obs::Timeline::SeriesId tl_busy = 0;
  obs::Timeline::SeriesId tl_prog = 0;
  obs::Timeline::SeriesId tl_slow = 0;
  if (tl != nullptr) {
    using Kind = obs::Timeline::SeriesKind;
    tl_fg = tl->series(config.timeline.name(".fg.requests"), Kind::kCounter);
    tl_coll = tl->series(config.timeline.name(".collisions"), Kind::kCounter);
    tl_mb = tl->series(config.timeline.name(".scrub.mb"), Kind::kCounter);
    tl_busy = tl->series(config.timeline.name(".scrub.busy_s"),
                         Kind::kCounter);
    tl_prog = tl->series(config.timeline.name(".scrub.progress.mb"),
                         Kind::kGauge);
    tl_slow = tl->series(config.timeline.name(".slowdown_ms"), Kind::kDigest);
  }
  // Spreads one scrub burst's deltas over [t0, t1) and refreshes the
  // cumulative-progress gauge.
  const auto emit_burst = [&](SimTime t0, SimTime t1, std::int64_t bytes0,
                              SimTime utilized0) {
    const std::int64_t bytes_delta = out.scrubbed_bytes - bytes0;
    const SimTime utilized_delta = out.idle_utilized - utilized0;
    if (utilized_delta > 0) {
      tl->add_span(tl_busy, t0, t1, to_seconds(utilized_delta));
    }
    if (bytes_delta > 0) {
      tl->add_span(tl_mb, t0, t1, static_cast<double>(bytes_delta) / 1e6);
      tl->set_gauge(tl_prog, t1,
                    static_cast<double>(out.scrubbed_bytes) / 1e6);
    }
  };

  for (std::size_t rec_index = 0; rec_index < trace.records.size();
       ++rec_index) {
    const trace::TraceRecord& rec = trace.records[rec_index];
    const SimTime arr = rec.arrival;
    const SimTime svc = config.services != nullptr
                            ? (*config.services)[rec_index]
                            : config.foreground_service(rec);

    // Baseline frontier.
    const SimTime base_start = std::max(arr, base_busy);
    base_busy = base_start + svc;
    const SimTime base_resp = base_busy - arr;

    // Idle interval before this arrival (with-scrub timeline).
    bool collided_here = false;
    const std::int64_t collisions_before = out.collisions;
    if (arr > busy) {
      const SimTime idle = arr - busy;
      out.total_idle += idle;

      std::optional<SimTime> wait = policy.clairvoyant()
                                        ? policy.decide_clairvoyant(idle)
                                        : policy.decide();
      if (traced) {
        tracer.instant(obs::Track::kPolicy, "policy",
                       wait ? "decide: scrub" : "decide: skip", busy,
                       {{"policy", policy.name()},
                        {"idle_ms", to_milliseconds(idle)},
                        {"wait_ms", wait ? to_milliseconds(*wait) : -1.0}});
      }
      if (wait && *wait < idle) {
        if (policy.lossless()) {
          // Hypothetical accounting: the interval counts as fully used and
          // ends in one collision, but the foreground timeline is not
          // perturbed (these policies exist to bound real ones).
          const std::int64_t bytes0 = out.scrubbed_bytes;
          const SimTime utilized0 = out.idle_utilized;
          out.idle_utilized += idle;
          ++out.collisions;
          const SimTime fire_span = idle;
          const SimTime one = config.scrub_service(sizer.next(0));
          if (one > 0) {
            const std::int64_t n = fire_span / one;
            out.scrub_requests += n;
            out.scrubbed_bytes += n * sizer.next(0);
          }
          if (tl != nullptr) emit_burst(busy, arr, bytes0, utilized0);
        } else {
          // Fire from busy + wait until the arrival interrupts us, or the
          // policy's per-interval budget (if any) runs out. A budgeted
          // scrubber never issues a request that would overrun its budget,
          // so only arrival-straddling requests collide.
          const SimTime fire_start = busy + *wait;
          const SimTime budget = policy.fire_budget();
          const SimTime stop_at =
              budget > 0 && fire_start + budget < arr ? fire_start + budget
                                                      : arr;
          const std::int64_t bytes0 = out.scrubbed_bytes;
          const SimTime utilized0 = out.idle_utilized;
          SimTime t = fire_start;
          sizer.reset();
          while (t < stop_at) {
            const std::int64_t bytes = sizer.next(t - fire_start);
            const SimTime dur = config.scrub_service(bytes);
            if (dur <= 0) break;
            if (sizer.stable(t - fire_start)) {
              // The size is fixed from here on: batch the remaining full
              // requests in O(1) instead of iterating (an idle interval
              // can hold thousands of 64 KB verifies).
              const std::int64_t full = (stop_at - t) / dur;
              out.scrub_requests += full;
              out.scrubbed_bytes += full * bytes;
              out.idle_utilized += full * dur;
              t += full * dur;
              if (t < stop_at && stop_at == arr) {
                // One more request straddles the arrival: collision.
                ++out.scrub_requests;
                out.scrubbed_bytes += bytes;
                out.idle_utilized += arr - t;
                ++out.collisions;
                collided_here = true;
                busy = t + dur;
              }
              break;
            }
            const SimTime end = t + dur;
            if (end > stop_at && stop_at < arr) break;  // budget exhausted
            ++out.scrub_requests;
            out.scrubbed_bytes += bytes;
            out.idle_utilized += std::min(end, arr) - t;
            if (end > arr) {
              // Foreground arrived mid-request: collision. The request
              // completes; the foreground waits for it.
              ++out.collisions;
              collided_here = true;
              busy = end;
              break;
            }
            sizer.advance();
            t = end;
          }
          const SimTime burst_end = collided_here ? busy : t;
          if (tl != nullptr && burst_end > fire_start) {
            emit_burst(fire_start, burst_end, bytes0, utilized0);
          }
          if (traced) {
            if (burst_end > fire_start) {
              tracer.span(obs::Track::kPolicy, "policy", "scrub-burst",
                          fire_start, burst_end,
                          {{"policy", policy.name()}});
            }
            if (collided_here) {
              tracer.instant(obs::Track::kPolicy, "policy",
                             "collision (scrub overrun)", arr);
            }
          }
          if (!collided_here) busy = arr;
        }
      } else {
        busy = arr;
      }
      policy.observe(idle);
    }
    (void)collided_here;

    // Serve the foreground request.
    const SimTime start = std::max(arr, busy);
    busy = start + svc;
    const SimTime resp = busy - arr;
    const SimTime slowdown = resp - base_resp;
    out.slowdown_sum += slowdown;
    out.slowdown_max = std::max(out.slowdown_max, slowdown);
    if (tl != nullptr) {
      tl->add(tl_fg, arr, 1.0);
      tl->observe(tl_slow, arr, to_milliseconds(slowdown));
      if (out.collisions > collisions_before) {
        tl->add(tl_coll, arr,
                static_cast<double>(out.collisions - collisions_before));
      }
    }
    if (config.keep_response_samples) {
      out.response_seconds.push_back(to_seconds(resp));
      out.baseline_response_seconds.push_back(to_seconds(base_resp));
    }
  }

  // Trailing idle time after the last request, through the end of the
  // observation window: available and exploitable without any collision.
  const SimTime window_end = std::max(trace.duration, busy);
  if (window_end > busy) {
    const SimTime idle = window_end - busy;
    out.total_idle += idle;
    std::optional<SimTime> wait = policy.clairvoyant()
                                      ? policy.decide_clairvoyant(idle)
                                      : policy.decide();
    if (wait && *wait < idle) {
      const std::int64_t bytes0 = out.scrubbed_bytes;
      const SimTime utilized0 = out.idle_utilized;
      const SimTime fire_span = policy.lossless() ? idle : idle - *wait;
      sizer.reset();
      const SimTime one = config.scrub_service(sizer.next(0));
      if (one > 0) {
        const std::int64_t n = fire_span / one;
        out.scrub_requests += n;
        out.scrubbed_bytes += n * sizer.next(0);
        out.idle_utilized += policy.lossless() ? fire_span : n * one;
      }
      if (tl != nullptr) {
        // Trailing scrubbing runs contiguously from the fire point.
        const SimTime t0 = policy.lossless() ? busy : busy + *wait;
        emit_burst(t0, t0 + (out.idle_utilized - utilized0), bytes0,
                   utilized0);
      }
    }
  }
  if (tl != nullptr) {
    tl->set_gauge(tl_prog, window_end,
                  static_cast<double>(out.scrubbed_bytes) / 1e6);
  }

  finish_stats(out, window_end);
  return out;
}

PolicySimResult run_policy_sim(const trace::Trace& trace, IdlePolicy& policy,
                               const PolicySimConfig& config) {
  return run_policy_sim_reference(trace, policy, config);
}

namespace {

/// Per-threshold running state of the batched Waiting walk. `delay` is the
/// with-scrub frontier minus the baseline frontier: a collision overrun
/// sets it, swallowed baseline gaps drain it, and every request in a
/// segment downstream of a gap that left delay d is slowed by exactly d.
struct WaitingLane {
  SimTime threshold = 0;
  SimTime delay = 0;
  /// Baseline idle the carried delay consumed (total_idle = gap sum minus
  /// this, plus the trailing window).
  SimTime idle_lost = 0;
  std::int64_t collisions = 0;
  std::int64_t scrub_requests = 0;
  std::int64_t scrubbed_bytes = 0;
  SimTime idle_utilized = 0;
  SimTime slowdown_sum = 0;
  SimTime slowdown_max = 0;
};

/// Fires Waiting(lane.threshold) into an effective idle window of length
/// `effective` (> threshold) that ends in an arrival, mirroring the
/// reference's stable-sizer batch: full requests, then one straddling
/// request iff the window does not divide evenly -- that collision's
/// overrun becomes the lane's carried delay.
inline void fire_into_gap(WaitingLane& lane, SimTime effective,
                          std::int64_t segment_records, SimTime dur,
                          std::int64_t bytes) {
  const SimTime span = effective - lane.threshold;
  const std::int64_t full = span / dur;
  const SimTime rem = span - full * dur;
  lane.scrub_requests += full;
  lane.scrubbed_bytes += full * bytes;
  lane.idle_utilized += full * dur;
  if (rem > 0) {
    ++lane.scrub_requests;
    lane.scrubbed_bytes += bytes;
    lane.idle_utilized += rem;
    ++lane.collisions;
    lane.delay = dur - rem;
    lane.slowdown_sum += lane.delay * segment_records;
    lane.slowdown_max = std::max(lane.slowdown_max, lane.delay);
  } else {
    lane.delay = 0;
  }
}

/// Advances one lane across one baseline gap (the per-interval step of
/// the reference replay, collapsed to O(1)).
inline void step_gap(WaitingLane& lane, SimTime gap,
                     std::int64_t segment_records, SimTime dur,
                     std::int64_t bytes) {
  if (lane.delay == 0) {
    // No carried delay: the effective idle equals the baseline gap, and
    // gaps at or below the threshold are complete no-ops (the prefix-sum
    // base already accounts for their idle time).
    if (lane.threshold < gap && dur > 0) {
      fire_into_gap(lane, gap, segment_records, dur, bytes);
    }
    return;
  }
  const SimTime effective = gap - lane.delay;
  if (effective > 0) {
    lane.idle_lost += lane.delay;
    if (lane.threshold < effective && dur > 0) {
      fire_into_gap(lane, effective, segment_records, dur, bytes);
    } else {
      lane.delay = 0;
    }
  } else {
    // Gap swallowed whole: the delay cascades into the next segment.
    lane.idle_lost += gap;
    lane.delay -= gap;
    lane.slowdown_sum += lane.delay * segment_records;
    lane.slowdown_max = std::max(lane.slowdown_max, lane.delay);
  }
}

/// The trailing idle window (after the last request, through the end of
/// the observation window) plus the final double-valued stats.
PolicySimResult finish_lane(const WaitingLane& lane,
                            const IdleDecomposition& decomp, SimTime dur,
                            std::int64_t bytes) {
  PolicySimResult out;
  out.foreground_requests = decomp.total_records;
  out.collisions = lane.collisions;
  out.scrub_requests = lane.scrub_requests;
  out.scrubbed_bytes = lane.scrubbed_bytes;
  out.idle_utilized = lane.idle_utilized;
  out.total_idle = decomp.total_gap_idle() - lane.idle_lost;
  out.slowdown_sum = lane.slowdown_sum;
  out.slowdown_max = lane.slowdown_max;

  const SimTime busy_end = decomp.end_of_activity + lane.delay;
  const SimTime window_end = std::max(decomp.duration, busy_end);
  if (window_end > busy_end) {
    const SimTime idle = window_end - busy_end;
    out.total_idle += idle;
    if (lane.threshold < idle && dur > 0) {
      const std::int64_t n = (idle - lane.threshold) / dur;
      out.scrub_requests += n;
      out.scrubbed_bytes += n * bytes;
      out.idle_utilized += n * dur;
    }
  }
  finish_stats(out, window_end);
  return out;
}

}  // namespace

std::vector<PolicySimResult> run_waiting_grid(
    const IdleDecomposition& decomp, const WaitingGridRequest& request,
    std::span<const SimTime> thresholds) {
  const SimTime dur = request.request_service;
  const std::int64_t bytes = request.request_bytes;
  const std::size_t m = thresholds.size();

  // Lanes sorted ascending by threshold (stable, so duplicate thresholds
  // keep input order); `order[i]` maps lane i back to its input slot.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&thresholds](std::uint32_t a, std::uint32_t b) {
                     return thresholds[a] < thresholds[b];
                   });
  std::vector<WaitingLane> lanes(m);
  std::vector<SimTime> sorted_thresholds(m);
  for (std::size_t i = 0; i < m; ++i) {
    lanes[i].threshold = thresholds[order[i]];
    sorted_thresholds[i] = lanes[i].threshold;
  }

  // One pass over the time-ordered gap stream. Per gap, only two groups
  // of lanes do work: the sorted prefix of zero-delay lanes whose
  // threshold the gap exceeds (they fire), and the (typically tiny) set
  // of lanes still draining a collision overrun. Everything else is a
  // no-op, which is what makes the batched pass cheap.
  std::vector<std::uint32_t> delayed;
  std::vector<std::int64_t> stepped(m, -1);
  const std::size_t n = decomp.gaps.size();
  for (std::size_t j = 0; j < n; ++j) {
    const SimTime gap = decomp.gaps[j];
    const std::int64_t seg = decomp.segment_records[j];
    const auto jj = static_cast<std::int64_t>(j);

    std::size_t keep = 0;
    for (const std::uint32_t idx : delayed) {
      WaitingLane& lane = lanes[idx];
      stepped[idx] = jj;
      step_gap(lane, gap, seg, dur, bytes);
      if (lane.delay > 0) delayed[keep++] = idx;
    }
    delayed.resize(keep);

    const auto fire_end = static_cast<std::size_t>(
        std::lower_bound(sorted_thresholds.begin(), sorted_thresholds.end(),
                         gap) -
        sorted_thresholds.begin());
    for (std::size_t i = 0; i < fire_end; ++i) {
      if (stepped[i] == jj) continue;  // already advanced as a delayed lane
      WaitingLane& lane = lanes[i];
      step_gap(lane, gap, seg, dur, bytes);
      if (lane.delay > 0) delayed.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::vector<PolicySimResult> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    out[order[i]] = finish_lane(lanes[i], decomp, dur, bytes);
  }
  return out;
}

PolicySimResult run_waiting_single(const IdleDecomposition& decomp,
                                   const WaitingGridRequest& request,
                                   SimTime threshold) {
  const SimTime dur = request.request_service;
  const std::int64_t bytes = request.request_bytes;
  WaitingLane lane;
  lane.threshold = threshold;
  const std::size_t n = decomp.gaps.size();

  // Only intervals longer than the threshold can start a burst; while no
  // delay is pending every other interval is a no-op. When the captured
  // set is small, visit just those intervals (in time order, via the
  // sorted index) and walk the in-between gaps only while a collision
  // overrun is draining. Near-zero thresholds capture almost everything,
  // so fall back to the plain linear walk there.
  const std::int64_t captured = dur > 0 ? decomp.captured_intervals(threshold)
                                        : 0;
  const bool sparse = dur > 0 && captured < static_cast<std::int64_t>(n / 4);
  if (!sparse) {
    for (std::size_t j = 0; j < n; ++j) {
      step_gap(lane, decomp.gaps[j], decomp.segment_records[j], dur, bytes);
    }
    return finish_lane(lane, decomp, dur, bytes);
  }

  // Candidate positions = the top `captured` entries of the sorted index,
  // restored to time order.
  std::vector<std::uint32_t> candidates(
      decomp.sorted_pos.end() - captured, decomp.sorted_pos.end());
  std::sort(candidates.begin(), candidates.end());

  std::size_t chain = n;  // next gap to drain while delay > 0
  for (const std::uint32_t pos : candidates) {
    while (lane.delay > 0 && chain < pos) {
      step_gap(lane, decomp.gaps[chain], decomp.segment_records[chain], dur,
               bytes);
      ++chain;
    }
    step_gap(lane, decomp.gaps[pos], decomp.segment_records[pos], dur, bytes);
    if (lane.delay > 0) chain = pos + 1;
  }
  while (lane.delay > 0 && chain < n) {
    step_gap(lane, decomp.gaps[chain], decomp.segment_records[chain], dur,
             bytes);
    ++chain;
  }
  return finish_lane(lane, decomp, dur, bytes);
}

std::vector<SimTime> precompute_services(const trace::Trace& trace,
                                         const trace::ServiceModel& model) {
  std::vector<SimTime> out;
  out.reserve(trace.records.size());
  for (const trace::TraceRecord& rec : trace.records) {
    out.push_back(model(rec));
  }
  return out;
}

PolicySimResult run_baseline(const trace::Trace& trace,
                             const trace::ServiceModel& foreground_service,
                             bool keep_response_samples) {
  NeverPolicy never;
  PolicySimConfig config;
  config.foreground_service = foreground_service;
  config.scrub_service = [](std::int64_t) { return SimTime{0}; };
  config.keep_response_samples = keep_response_samples;
  return run_policy_sim(trace, never, config);
}

}  // namespace pscrub::core
