#include "core/policy_sim.h"

#include <algorithm>
#include <cassert>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::core {

void PolicySimResult::export_to(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".foreground_requests") += foreground_requests;
  registry.counter(prefix + ".collisions") += collisions;
  registry.counter(prefix + ".scrub_requests") += scrub_requests;
  registry.counter(prefix + ".scrubbed_bytes") += scrubbed_bytes;
  registry.gauge(prefix + ".collision_rate").set(collision_rate);
  registry.gauge(prefix + ".idle_utilization").set(idle_utilization);
  registry.gauge(prefix + ".total_idle_ms").set(to_milliseconds(total_idle));
  registry.gauge(prefix + ".idle_utilized_ms")
      .set(to_milliseconds(idle_utilized));
  registry.gauge(prefix + ".scrub_mb_s").set(scrub_mb_s);
  registry.gauge(prefix + ".mean_slowdown_ms").set(mean_slowdown_ms);
  registry.gauge(prefix + ".slowdown_max_ms")
      .set(to_milliseconds(slowdown_max));
}

namespace {

/// Policy that never scrubs; used for baselines.
class NeverPolicy final : public IdlePolicy {
 public:
  std::optional<SimTime> decide() override { return std::nullopt; }
  void observe(SimTime) override {}
  const char* name() const override { return "never"; }
};

}  // namespace

PolicySimResult run_policy_sim(const trace::Trace& trace, IdlePolicy& policy,
                               const PolicySimConfig& config) {
  PolicySimResult out;
  out.foreground_requests = static_cast<std::int64_t>(trace.records.size());
  if (config.keep_response_samples) {
    out.response_seconds.reserve(trace.records.size());
    out.baseline_response_seconds.reserve(trace.records.size());
  }

  SimTime busy = 0;       // with-scrub completion frontier
  SimTime base_busy = 0;  // baseline (no scrub) frontier
  ScrubSizer sizer = config.sizer;
  assert(config.services == nullptr ||
         config.services->size() == trace.records.size());

  // Hoisted so the (very hot) per-record loop branches on a local bool.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool traced = tracer.enabled();

  // Timeline series resolved once up front; `tl` doubles as the hoisted
  // enabled flag. Scrub activity is emitted at burst granularity (one
  // add_span per idle interval, not per verify), so the timeline adds
  // nothing measurable to the per-record cost.
  obs::Timeline* tl =
      config.timeline.enabled() ? config.timeline.timeline : nullptr;
  obs::Timeline::SeriesId tl_fg = 0;
  obs::Timeline::SeriesId tl_coll = 0;
  obs::Timeline::SeriesId tl_mb = 0;
  obs::Timeline::SeriesId tl_busy = 0;
  obs::Timeline::SeriesId tl_prog = 0;
  obs::Timeline::SeriesId tl_slow = 0;
  if (tl != nullptr) {
    using Kind = obs::Timeline::SeriesKind;
    tl_fg = tl->series(config.timeline.name(".fg.requests"), Kind::kCounter);
    tl_coll = tl->series(config.timeline.name(".collisions"), Kind::kCounter);
    tl_mb = tl->series(config.timeline.name(".scrub.mb"), Kind::kCounter);
    tl_busy = tl->series(config.timeline.name(".scrub.busy_s"),
                         Kind::kCounter);
    tl_prog = tl->series(config.timeline.name(".scrub.progress.mb"),
                         Kind::kGauge);
    tl_slow = tl->series(config.timeline.name(".slowdown_ms"), Kind::kDigest);
  }
  // Spreads one scrub burst's deltas over [t0, t1) and refreshes the
  // cumulative-progress gauge.
  const auto emit_burst = [&](SimTime t0, SimTime t1, std::int64_t bytes0,
                              SimTime utilized0) {
    const std::int64_t bytes_delta = out.scrubbed_bytes - bytes0;
    const SimTime utilized_delta = out.idle_utilized - utilized0;
    if (utilized_delta > 0) {
      tl->add_span(tl_busy, t0, t1, to_seconds(utilized_delta));
    }
    if (bytes_delta > 0) {
      tl->add_span(tl_mb, t0, t1, static_cast<double>(bytes_delta) / 1e6);
      tl->set_gauge(tl_prog, t1,
                    static_cast<double>(out.scrubbed_bytes) / 1e6);
    }
  };

  for (std::size_t rec_index = 0; rec_index < trace.records.size();
       ++rec_index) {
    const trace::TraceRecord& rec = trace.records[rec_index];
    const SimTime arr = rec.arrival;
    const SimTime svc = config.services != nullptr
                            ? (*config.services)[rec_index]
                            : config.foreground_service(rec);

    // Baseline frontier.
    const SimTime base_start = std::max(arr, base_busy);
    base_busy = base_start + svc;
    const SimTime base_resp = base_busy - arr;

    // Idle interval before this arrival (with-scrub timeline).
    bool collided_here = false;
    const std::int64_t collisions_before = out.collisions;
    if (arr > busy) {
      const SimTime idle = arr - busy;
      out.total_idle += idle;

      std::optional<SimTime> wait = policy.clairvoyant()
                                        ? policy.decide_clairvoyant(idle)
                                        : policy.decide();
      if (traced) {
        tracer.instant(obs::Track::kPolicy, "policy",
                       wait ? "decide: scrub" : "decide: skip", busy,
                       {{"policy", policy.name()},
                        {"idle_ms", to_milliseconds(idle)},
                        {"wait_ms", wait ? to_milliseconds(*wait) : -1.0}});
      }
      if (wait && *wait < idle) {
        if (policy.lossless()) {
          // Hypothetical accounting: the interval counts as fully used and
          // ends in one collision, but the foreground timeline is not
          // perturbed (these policies exist to bound real ones).
          const std::int64_t bytes0 = out.scrubbed_bytes;
          const SimTime utilized0 = out.idle_utilized;
          out.idle_utilized += idle;
          ++out.collisions;
          const SimTime fire_span = idle;
          const SimTime one = config.scrub_service(sizer.next(0));
          if (one > 0) {
            const std::int64_t n = fire_span / one;
            out.scrub_requests += n;
            out.scrubbed_bytes += n * sizer.next(0);
          }
          if (tl != nullptr) emit_burst(busy, arr, bytes0, utilized0);
        } else {
          // Fire from busy + wait until the arrival interrupts us, or the
          // policy's per-interval budget (if any) runs out. A budgeted
          // scrubber never issues a request that would overrun its budget,
          // so only arrival-straddling requests collide.
          const SimTime fire_start = busy + *wait;
          const SimTime budget = policy.fire_budget();
          const SimTime stop_at =
              budget > 0 && fire_start + budget < arr ? fire_start + budget
                                                      : arr;
          const std::int64_t bytes0 = out.scrubbed_bytes;
          const SimTime utilized0 = out.idle_utilized;
          SimTime t = fire_start;
          sizer.reset();
          while (t < stop_at) {
            const std::int64_t bytes = sizer.next(t - fire_start);
            const SimTime dur = config.scrub_service(bytes);
            if (dur <= 0) break;
            if (sizer.stable(t - fire_start)) {
              // The size is fixed from here on: batch the remaining full
              // requests in O(1) instead of iterating (an idle interval
              // can hold thousands of 64 KB verifies).
              const std::int64_t full = (stop_at - t) / dur;
              out.scrub_requests += full;
              out.scrubbed_bytes += full * bytes;
              out.idle_utilized += full * dur;
              t += full * dur;
              if (t < stop_at && stop_at == arr) {
                // One more request straddles the arrival: collision.
                ++out.scrub_requests;
                out.scrubbed_bytes += bytes;
                out.idle_utilized += arr - t;
                ++out.collisions;
                collided_here = true;
                busy = t + dur;
              }
              break;
            }
            const SimTime end = t + dur;
            if (end > stop_at && stop_at < arr) break;  // budget exhausted
            ++out.scrub_requests;
            out.scrubbed_bytes += bytes;
            out.idle_utilized += std::min(end, arr) - t;
            if (end > arr) {
              // Foreground arrived mid-request: collision. The request
              // completes; the foreground waits for it.
              ++out.collisions;
              collided_here = true;
              busy = end;
              break;
            }
            sizer.advance();
            t = end;
          }
          const SimTime burst_end = collided_here ? busy : t;
          if (tl != nullptr && burst_end > fire_start) {
            emit_burst(fire_start, burst_end, bytes0, utilized0);
          }
          if (traced) {
            if (burst_end > fire_start) {
              tracer.span(obs::Track::kPolicy, "policy", "scrub-burst",
                          fire_start, burst_end,
                          {{"policy", policy.name()}});
            }
            if (collided_here) {
              tracer.instant(obs::Track::kPolicy, "policy",
                             "collision (scrub overrun)", arr);
            }
          }
          if (!collided_here) busy = arr;
        }
      } else {
        busy = arr;
      }
      policy.observe(idle);
    }
    (void)collided_here;

    // Serve the foreground request.
    const SimTime start = std::max(arr, busy);
    busy = start + svc;
    const SimTime resp = busy - arr;
    const SimTime slowdown = resp - base_resp;
    out.slowdown_sum += slowdown;
    out.slowdown_max = std::max(out.slowdown_max, slowdown);
    if (tl != nullptr) {
      tl->add(tl_fg, arr, 1.0);
      tl->observe(tl_slow, arr, to_milliseconds(slowdown));
      if (out.collisions > collisions_before) {
        tl->add(tl_coll, arr,
                static_cast<double>(out.collisions - collisions_before));
      }
    }
    if (config.keep_response_samples) {
      out.response_seconds.push_back(to_seconds(resp));
      out.baseline_response_seconds.push_back(to_seconds(base_resp));
    }
  }

  // Trailing idle time after the last request, through the end of the
  // observation window: available and exploitable without any collision.
  const SimTime window_end = std::max(trace.duration, busy);
  if (window_end > busy) {
    const SimTime idle = window_end - busy;
    out.total_idle += idle;
    std::optional<SimTime> wait = policy.clairvoyant()
                                      ? policy.decide_clairvoyant(idle)
                                      : policy.decide();
    if (wait && *wait < idle) {
      const std::int64_t bytes0 = out.scrubbed_bytes;
      const SimTime utilized0 = out.idle_utilized;
      const SimTime fire_span = policy.lossless() ? idle : idle - *wait;
      sizer.reset();
      const SimTime one = config.scrub_service(sizer.next(0));
      if (one > 0) {
        const std::int64_t n = fire_span / one;
        out.scrub_requests += n;
        out.scrubbed_bytes += n * sizer.next(0);
        out.idle_utilized += policy.lossless() ? fire_span : n * one;
      }
      if (tl != nullptr) {
        // Trailing scrubbing runs contiguously from the fire point.
        const SimTime t0 = policy.lossless() ? busy : busy + *wait;
        emit_burst(t0, t0 + (out.idle_utilized - utilized0), bytes0,
                   utilized0);
      }
    }
  }
  if (tl != nullptr) {
    tl->set_gauge(tl_prog, window_end,
                  static_cast<double>(out.scrubbed_bytes) / 1e6);
  }

  if (out.foreground_requests > 0) {
    out.collision_rate = static_cast<double>(out.collisions) /
                         static_cast<double>(out.foreground_requests);
    out.mean_slowdown_ms = to_milliseconds(out.slowdown_sum) /
                           static_cast<double>(out.foreground_requests);
  }
  if (out.total_idle > 0) {
    out.idle_utilization = static_cast<double>(out.idle_utilized) /
                           static_cast<double>(out.total_idle);
  }
  if (window_end > 0) {
    out.scrub_mb_s = static_cast<double>(out.scrubbed_bytes) / 1e6 /
                     to_seconds(window_end);
  }
  return out;
}

std::vector<SimTime> precompute_services(const trace::Trace& trace,
                                         const trace::ServiceModel& model) {
  std::vector<SimTime> out;
  out.reserve(trace.records.size());
  for (const trace::TraceRecord& rec : trace.records) {
    out.push_back(model(rec));
  }
  return out;
}

PolicySimResult run_baseline(const trace::Trace& trace,
                             const trace::ServiceModel& foreground_service,
                             bool keep_response_samples) {
  NeverPolicy never;
  PolicySimConfig config;
  config.foreground_service = foreground_service;
  config.scrub_service = [](std::int64_t) { return SimTime{0}; };
  config.keep_response_samples = keep_response_samples;
  return run_policy_sim(trace, never, config);
}

}  // namespace pscrub::core
