#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "exp/sweep.h"
#include "obs/trace_event.h"

namespace pscrub::core {

std::vector<std::int64_t> default_size_grid() {
  // 64 KB-aligned, denser at the low end where Fig 4's service-time knee
  // sits; matches the granularity of the paper's reported optima
  // (768 KB, 1216 KB, 1280 KB, 1472 KB, 3072 KB ...).
  constexpr std::int64_t kKb = 1024;
  return {
      64 * kKb,   128 * kKb,  192 * kKb,  256 * kKb,  384 * kKb,
      512 * kKb,  640 * kKb,  768 * kKb,  896 * kKb,  1024 * kKb,
      1216 * kKb, 1280 * kKb, 1472 * kKb, 1536 * kKb, 2048 * kKb,
      2560 * kKb, 3072 * kKb, 3584 * kKb, 4096 * kKb,
  };
}

namespace {

/// One probe of the threshold search. The decomposition path is
/// bit-identical to the reference replay (tests/test_policy_batched.cc);
/// the reference is kept for tracer runs, which want the per-interval
/// decision instants only the full replay emits.
class ProbeEvaluator {
 public:
  ProbeEvaluator(const trace::Trace& trace, const OptimizerConfig& config,
                 std::int64_t request_bytes)
      : trace_(trace), config_(config), use_reference_(
            obs::Tracer::global().enabled()) {
    request_.request_bytes = request_bytes;
    request_.request_service = config.scrub_service(request_bytes);
    if (use_reference_) return;
    if (config.decomposition != nullptr) {
      decomp_ = config.decomposition;
    } else if (config.services != nullptr) {
      owned_ = IdleDecomposition::from_trace(trace, *config.services);
      decomp_ = &owned_;
    } else {
      owned_ = IdleDecomposition::from_trace(trace, config.foreground_service);
      decomp_ = &owned_;
    }
  }

  PolicySimResult operator()(SimTime threshold) const {
    if (!use_reference_) {
      return run_waiting_single(*decomp_, request_, threshold);
    }
    WaitingPolicy policy(threshold);
    PolicySimConfig sim;
    sim.foreground_service = config_.foreground_service;
    sim.scrub_service = config_.scrub_service;
    sim.services = config_.services;
    sim.sizer = ScrubSizer::fixed(request_.request_bytes);
    return run_policy_sim_reference(trace_, policy, sim);
  }

 private:
  const trace::Trace& trace_;
  const OptimizerConfig& config_;
  WaitingGridRequest request_;
  const IdleDecomposition* decomp_ = nullptr;
  IdleDecomposition owned_;
  bool use_reference_ = false;
};

}  // namespace

SizeThresholdChoice tune_threshold_for_size(const trace::Trace& trace,
                                            const OptimizerConfig& config,
                                            std::int64_t request_bytes,
                                            SimTime goal_mean) {
  const ProbeEvaluator evaluate(trace, config, request_bytes);
  // Binary search in log-threshold space: mean slowdown is monotonically
  // non-increasing in the threshold (larger thresholds capture fewer,
  // longer intervals -> fewer collisions).
  double lo = std::log(static_cast<double>(config.min_threshold));
  double hi = std::log(static_cast<double>(config.max_threshold));
  const double goal_ms = to_milliseconds(goal_mean);

  SizeThresholdChoice best;
  best.request_bytes = request_bytes;
  best.threshold = config.max_threshold;

  // Quick feasibility probe at the largest threshold.
  {
    const PolicySimResult r = evaluate(config.max_threshold);
    if (r.mean_slowdown_ms > goal_ms) {
      best.scrub_mb_s = 0.0;
      best.achieved_mean_slowdown_ms = r.mean_slowdown_ms;
      best.collision_rate = r.collision_rate;
      return best;  // goal unreachable even with maximal waiting
    }
    best.scrub_mb_s = r.scrub_mb_s;
    best.achieved_mean_slowdown_ms = r.mean_slowdown_ms;
    best.collision_rate = r.collision_rate;
  }

  for (int i = 0; i < config.binary_search_iters; ++i) {
    const double mid = (lo + hi) / 2.0;
    const auto threshold = static_cast<SimTime>(std::exp(mid));
    const PolicySimResult r = evaluate(threshold);
    if (r.mean_slowdown_ms <= goal_ms) {
      // Feasible: remember it and push toward smaller thresholds (more
      // captured idle time, more throughput).
      if (threshold < best.threshold) {
        best.threshold = threshold;
        best.scrub_mb_s = r.scrub_mb_s;
        best.achieved_mean_slowdown_ms = r.mean_slowdown_ms;
        best.collision_rate = r.collision_rate;
      }
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

SizeThresholdChoice optimize(const trace::Trace& trace,
                             const OptimizerConfig& config,
                             const SlowdownGoal& goal) {
  const std::vector<std::int64_t> sizes =
      config.candidate_sizes.empty() ? default_size_grid()
                                     : config.candidate_sizes;

  // Freeze the foreground model into a per-record service vector before
  // fanning out: make_foreground_service is stateful (copies of the
  // std::function share a head-position cell), so it must never run from
  // two workers at once.
  OptimizerConfig cfg = config;
  std::vector<SimTime> precomputed;
  if (cfg.services == nullptr) {
    precomputed = precompute_services(trace, cfg.foreground_service);
    cfg.services = &precomputed;
  }

  // One idle-interval extraction serves every (size, threshold) probe: the
  // decomposition depends only on the trace and the foreground service
  // model, never on the scrub parameters being searched.
  IdleDecomposition decomposition;
  if (cfg.decomposition == nullptr) {
    decomposition = IdleDecomposition::from_trace(trace, *cfg.services);
    cfg.decomposition = &decomposition;
  }

  // The maximum tolerable slowdown bounds the request size through its
  // service time: a colliding foreground request waits at most one scrub
  // request's full service.
  std::vector<std::int64_t> eligible;
  for (std::int64_t size : sizes) {
    if (cfg.scrub_service(size) <= goal.max) eligible.push_back(size);
  }

  // One task per size, reduced in grid order with the same strict-greater
  // tie-break as the old serial loop, so the choice is bit-identical for
  // any worker count.
  exp::SweepOptions options;
  options.workers = cfg.workers;
  const std::vector<SizeThresholdChoice> choices =
      exp::sweep<SizeThresholdChoice>(
          eligible.size(),
          [&trace, &cfg, &eligible, &goal](exp::TaskContext& ctx) {
            return tune_threshold_for_size(trace, cfg, eligible[ctx.index],
                                           goal.mean);
          },
          options);

  SizeThresholdChoice best;
  for (const SizeThresholdChoice& c : choices) {
    if (c.scrub_mb_s > best.scrub_mb_s) best = c;
  }
  return best;
}

}  // namespace pscrub::core
