// Scrub request sizing within an idle interval (Sec V-C).
//
// Fixed: one size, chosen per slowdown goal -- the paper's winner.
// Exponential / Linear: grow the size while the interval stays collision-
// free (motivated by decreasing hazard rates; shown NOT to pay off).
// Swapping: start at the optimal size, switch to the maximum allowed size
// after t' of firing (the paper found t'_opt = infinity, i.e. never swap).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace pscrub::core {

class ScrubSizer {
 public:
  enum class Kind : std::uint8_t { kFixed, kExponential, kLinear, kSwapping };

  static ScrubSizer fixed(std::int64_t bytes) {
    ScrubSizer s;
    s.kind_ = Kind::kFixed;
    s.start_bytes_ = s.max_bytes_ = bytes;
    return s;
  }

  /// Size multiplies by `a` after every collision-free request.
  static ScrubSizer exponential(std::int64_t start_bytes, double a,
                                std::int64_t max_bytes) {
    ScrubSizer s;
    s.kind_ = Kind::kExponential;
    s.start_bytes_ = start_bytes;
    s.factor_a_ = a;
    s.max_bytes_ = max_bytes;
    return s;
  }

  /// Size becomes size * a + b after every collision-free request.
  static ScrubSizer linear(std::int64_t start_bytes, double a,
                           std::int64_t add_b, std::int64_t max_bytes) {
    ScrubSizer s;
    s.kind_ = Kind::kLinear;
    s.start_bytes_ = start_bytes;
    s.factor_a_ = a;
    s.add_b_ = add_b;
    s.max_bytes_ = max_bytes;
    return s;
  }

  /// Fires `start_bytes` until `swap_after` into the burst, then switches
  /// to `max_bytes`.
  static ScrubSizer swapping(std::int64_t start_bytes, std::int64_t max_bytes,
                             SimTime swap_after) {
    ScrubSizer s;
    s.kind_ = Kind::kSwapping;
    s.start_bytes_ = start_bytes;
    s.max_bytes_ = max_bytes;
    s.swap_after_ = swap_after;
    return s;
  }

  Kind kind() const { return kind_; }

  /// Resets at the start of each firing burst.
  void reset() { current_ = start_bytes_; }

  /// Size of the next request, given time already spent firing in this
  /// burst. Call advance() after the request completes without collision.
  std::int64_t next(SimTime fired_for) const {
    if (kind_ == Kind::kSwapping) {
      return fired_for >= swap_after_ ? max_bytes_ : start_bytes_;
    }
    return current_;
  }

  /// True when the size can no longer change within this burst (the
  /// simulator then batch-computes the remaining requests in O(1)).
  bool stable(SimTime fired_for) const {
    switch (kind_) {
      case Kind::kFixed:
        return true;
      case Kind::kExponential:
      case Kind::kLinear:
        return current_ >= max_bytes_;
      case Kind::kSwapping:
        return fired_for >= swap_after_;
    }
    return false;
  }

  void advance() {
    switch (kind_) {
      case Kind::kFixed:
      case Kind::kSwapping:
        break;
      case Kind::kExponential:
        current_ = std::min<std::int64_t>(
            max_bytes_, static_cast<std::int64_t>(
                            static_cast<double>(current_) * factor_a_));
        break;
      case Kind::kLinear:
        current_ = std::min<std::int64_t>(
            max_bytes_,
            static_cast<std::int64_t>(static_cast<double>(current_) *
                                      factor_a_) +
                add_b_);
        break;
    }
  }

  std::int64_t start_bytes() const { return start_bytes_; }
  std::int64_t max_bytes() const { return max_bytes_; }

 private:
  Kind kind_ = Kind::kFixed;
  std::int64_t start_bytes_ = 64 * 1024;
  std::int64_t max_bytes_ = 64 * 1024;
  std::int64_t current_ = 64 * 1024;
  double factor_a_ = 2.0;
  std::int64_t add_b_ = 0;
  SimTime swap_after_ = 0;
};

}  // namespace pscrub::core
