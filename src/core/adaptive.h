// Online adaptive tuning (the paper's Sec V-D deployment suggestion):
// "The simulations can be repeated to adapt the parameter values if the
// workload changes substantially."
//
// AdaptiveScrubDaemon watches the live foreground request stream through
// the block layer, keeps a rolling window of recent traffic, and
// periodically re-runs the (size, threshold) optimizer on that window,
// pushing the result into a running WaitingScrubber.
#pragma once

#include <cstdint>
#include <vector>

#include "block/block_layer.h"
#include "core/optimizer.h"
#include "core/scrubber.h"

namespace pscrub::core {

struct AdaptiveConfig {
  /// Slowdown budget handed to the optimizer on each retune.
  SlowdownGoal goal;
  /// How often to re-run the optimizer.
  SimTime retune_every = 10 * kMinute;
  /// Rolling window size (requests). Tuning needs enough idle intervals
  /// to estimate the tail; ~100k requests is plenty for the catalogs.
  std::size_t window_requests = 100'000;
  /// Minimum observed requests before the first retune.
  std::size_t min_requests = 5'000;
  /// Candidate sizes; empty = optimizer default grid. Keep it coarse:
  /// retuning runs inside the simulation loop.
  std::vector<std::int64_t> candidate_sizes = {
      64 * 1024,        256 * 1024,        512 * 1024, 1024 * 1024,
      2 * 1024 * 1024,  4 * 1024 * 1024,
  };
  int binary_search_iters = 8;
};

struct AdaptiveStats {
  std::int64_t retunes = 0;
  SizeThresholdChoice last_choice;
  SimTime last_retune_at = 0;
};

class AdaptiveScrubDaemon {
 public:
  /// The daemon drives `scrubber` (which must outlive it) using traffic
  /// observed on `blk`. `foreground_service` and `scrub_service` model the
  /// drive for the optimizer's internal simulation.
  AdaptiveScrubDaemon(Simulator& sim, block::BlockLayer& blk,
                      WaitingScrubber& scrubber,
                      trace::ServiceModel foreground_service,
                      ScrubServiceFn scrub_service, AdaptiveConfig config);
  ~AdaptiveScrubDaemon() { stop(); }
  AdaptiveScrubDaemon(const AdaptiveScrubDaemon&) = delete;
  AdaptiveScrubDaemon& operator=(const AdaptiveScrubDaemon&) = delete;

  /// Begins observing and schedules periodic retunes. Replaces any
  /// request observer previously registered on the block layer.
  void start();
  void stop();

  const AdaptiveStats& stats() const { return stats_; }

  /// Runs one retune immediately (also called by the periodic timer).
  /// Returns false when there is not enough history yet.
  bool retune();

 private:
  void on_request(const block::BlockRequest& request);
  void schedule_next();

  Simulator& sim_;
  block::BlockLayer& blk_;
  WaitingScrubber& scrubber_;
  trace::ServiceModel foreground_service_;
  ScrubServiceFn scrub_service_;
  AdaptiveConfig config_;
  AdaptiveStats stats_;
  std::vector<trace::TraceRecord> window_;
  bool running_ = false;
  EventId timer_ = 0;
};

}  // namespace pscrub::core
