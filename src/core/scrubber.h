// Event-driven scrubber drivers bound to the block layer.
//
// Scrubber      -- the paper's Sec III/IV configurations: issues VERIFY
//                  requests back-to-back or with a fixed inter-request
//                  delay, through either the kernel path (sortable,
//                  prioritizable requests "disguised as reads") or the
//                  user-level ioctl path (soft barriers).
// WaitingScrubber -- the Sec V approach: waits for the disk to be idle for
//                  a threshold, then fires back-to-back until a foreground
//                  request arrives.
#pragma once

#include <cstdint>
#include <memory>

#include "block/block_layer.h"
#include "core/scrub_strategy.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace pscrub::core {

enum class IssuePath : std::uint8_t {
  kKernel,  // in-kernel framework: sorted/prioritized like regular reads
  kUser,    // ioctl soft barrier: no sorting, no merging, no priority
};

struct ScrubberConfig {
  IssuePath path = IssuePath::kKernel;
  block::IoPriority priority = block::IoPriority::kIdle;
  /// Fixed delay inserted between a completion and the next request
  /// (0 = back-to-back).
  SimTime inter_request_delay = 0;
  disk::CommandKind verify_kind = disk::CommandKind::kVerifyScsi;
};

/// Scrubber-side request accounting: the same shared obs::IoStats bundle
/// the foreground workloads use (requests, bytes, latency histogram).
using ScrubberStats = obs::IoStats;

class Scrubber {
 public:
  Scrubber(Simulator& sim, block::BlockLayer& blk,
           std::unique_ptr<ScrubStrategy> strategy, ScrubberConfig config);

  void start();
  void stop() { running_ = false; }

  const ScrubberStats& stats() const { return stats_; }
  const ScrubStrategy& strategy() const { return *strategy_; }

 private:
  void issue();

  Simulator& sim_;
  block::BlockLayer& blk_;
  std::unique_ptr<ScrubStrategy> strategy_;
  ScrubberConfig config_;
  ScrubberStats stats_;
  bool running_ = false;
  /// Persistent inter-request-delay timer (re-armed per completion).
  EventId issue_event_ = 0;
};

/// Waiting-policy scrubber: arms when the block layer reports the disk
/// idle, fires after `wait_threshold` if still idle, and keeps issuing
/// until foreground work shows up (the "no stopping criterion" design
/// justified by decreasing hazard rates, Sec V-A).
class WaitingScrubber {
 public:
  WaitingScrubber(Simulator& sim, block::BlockLayer& blk,
                  std::unique_ptr<ScrubStrategy> strategy,
                  SimTime wait_threshold,
                  disk::CommandKind verify_kind = disk::CommandKind::kVerifyScsi);
  ~WaitingScrubber() {
    stop();
    sim_.remove(arm_event_);
  }
  WaitingScrubber(const WaitingScrubber&) = delete;
  WaitingScrubber& operator=(const WaitingScrubber&) = delete;

  void start();
  void stop();

  const ScrubberStats& stats() const { return stats_; }
  SimTime wait_threshold() const { return wait_threshold_; }

  /// Retunes the policy parameters at runtime (used by the adaptive
  /// daemon). Takes effect from the next idle interval / next request.
  void set_wait_threshold(SimTime t) { wait_threshold_ = t; }
  void set_request_bytes(std::int64_t bytes) {
    strategy_->set_request_sectors(disk::sectors_from_bytes(bytes));
  }

 private:
  void on_idle();
  void check_fire();
  void fire();

  Simulator& sim_;
  block::BlockLayer& blk_;
  std::unique_ptr<ScrubStrategy> strategy_;
  SimTime wait_threshold_;
  disk::CommandKind verify_kind_;
  ScrubberStats stats_;
  bool running_ = false;
  bool armed_ = false;
  EventId arm_event_ = 0;
};

}  // namespace pscrub::core
