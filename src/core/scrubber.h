// Event-driven scrubber drivers bound to the block layer.
//
// Scrubber      -- the paper's Sec III/IV configurations: issues VERIFY
//                  requests back-to-back or with a fixed inter-request
//                  delay, through either the kernel path (sortable,
//                  prioritizable requests "disguised as reads") or the
//                  user-level ioctl path (soft barriers).
// WaitingScrubber -- the Sec V approach: waits for the disk to be idle for
//                  a threshold, then fires back-to-back until a foreground
//                  request arrives.
#pragma once

#include <cstdint>
#include <memory>

#include "block/block_layer.h"
#include "core/scrub_strategy.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace pscrub::core {

enum class IssuePath : std::uint8_t {
  kKernel,  // in-kernel framework: sorted/prioritized like regular reads
  kUser,    // ioctl soft barrier: no sorting, no merging, no priority
};

struct ScrubberConfig {
  IssuePath path = IssuePath::kKernel;
  block::IoPriority priority = block::IoPriority::kIdle;
  /// Fixed delay inserted between a completion and the next request
  /// (0 = back-to-back).
  SimTime inter_request_delay = 0;
  disk::CommandKind verify_kind = disk::CommandKind::kVerifyScsi;
};

/// Scrubber-side request accounting: the same shared obs::IoStats bundle
/// the foreground workloads use (requests, bytes, latency histogram).
using ScrubberStats = obs::IoStats;

/// Shared progress instrumentation for both scrubber drivers. Emits, under
/// the sink's prefix:
///
///   .progress.sectors   gauge    cumulative sectors verified
///   .progress.fraction  gauge    first-pass completion in [0, 1]
///                                (pins at 1 once a full pass is done)
///   .progress.rate_sps  gauge    sectors/sec, EWMA-smoothed
///   .progress.eta_s     gauge    seconds to first-pass completion at the
///                                current rate (0 once complete)
///   .standdowns         counter  times the scrubber yielded to foreground
///
/// plus timestamped events (".events"): pass completions and stops.
class ScrubProgressRecorder {
 public:
  /// EWMA smoothing factor for the rate estimate.
  static constexpr double kRateAlpha = 0.2;

  void set_timeline(const obs::TimelineSink& sink) {
    sink_ = sink;
    ready_ = false;
  }
  bool enabled() const { return sink_.enabled(); }

  /// Records one verified extent completing at `now`. `total_sectors` is
  /// the pass size, `passes` the strategy's completed-pass count.
  void on_extent(SimTime now, std::int64_t sectors,
                 std::int64_t total_sectors, std::int64_t passes);
  void on_standdown(SimTime now);
  void on_stop(SimTime now, const char* reason);

 private:
  /// Lazily creates the series on first use.
  void resolve();

  obs::TimelineSink sink_;
  bool ready_ = false;
  obs::Timeline::SeriesId sectors_ = 0;
  obs::Timeline::SeriesId fraction_ = 0;
  obs::Timeline::SeriesId rate_ = 0;
  obs::Timeline::SeriesId eta_ = 0;
  obs::Timeline::SeriesId standdowns_ = 0;
  std::int64_t done_sectors_ = 0;
  std::int64_t last_passes_ = 0;
  SimTime last_at_ = -1;
  double ewma_sps_ = 0.0;
};

class Scrubber {
 public:
  Scrubber(Simulator& sim, block::BlockLayer& blk,
           std::unique_ptr<ScrubStrategy> strategy, ScrubberConfig config);

  void start();
  void stop() {
    running_ = false;
    paused_ = false;
  }

  /// Suspends issuing without losing the strategy cursor: the pending
  /// inter-request timer is cancelled and an in-flight verify completes
  /// (and is recorded) but does not chain. resume() picks up at the exact
  /// next extent -- the pause/resume pair is cursor-neutral.
  void pause();
  void resume();
  bool paused() const { return paused_; }

  const ScrubberStats& stats() const { return stats_; }
  const ScrubStrategy& strategy() const { return *strategy_; }
  /// Mutable strategy access for checkpoint restore (cursor seeding
  /// before start()).
  ScrubStrategy& mutable_strategy() { return *strategy_; }

  /// Attaches progress instrumentation (see ScrubProgressRecorder).
  void set_timeline(const obs::TimelineSink& sink) {
    progress_.set_timeline(sink);
  }

 private:
  void issue();

  Simulator& sim_;
  block::BlockLayer& blk_;
  std::unique_ptr<ScrubStrategy> strategy_;
  ScrubberConfig config_;
  ScrubberStats stats_;
  ScrubProgressRecorder progress_;
  bool running_ = false;
  bool paused_ = false;
  /// True between submit and completion: resume() must not start a second
  /// chain while a paused run's last verify is still in flight.
  bool in_flight_ = false;
  /// Persistent inter-request-delay timer (re-armed per completion).
  EventId issue_event_ = 0;
};

/// Waiting-policy scrubber: arms when the block layer reports the disk
/// idle, fires after `wait_threshold` if still idle, and keeps issuing
/// until foreground work shows up (the "no stopping criterion" design
/// justified by decreasing hazard rates, Sec V-A).
class WaitingScrubber {
 public:
  WaitingScrubber(Simulator& sim, block::BlockLayer& blk,
                  std::unique_ptr<ScrubStrategy> strategy,
                  SimTime wait_threshold,
                  disk::CommandKind verify_kind = disk::CommandKind::kVerifyScsi);
  ~WaitingScrubber() {
    stop();
    sim_.remove(arm_event_);
  }
  WaitingScrubber(const WaitingScrubber&) = delete;
  WaitingScrubber& operator=(const WaitingScrubber&) = delete;

  void start();
  void stop();

  /// Operator pause/resume: stop() keeps the strategy cursor already, so
  /// pause is stop + a flag; resume re-engages the idle observer. The
  /// pair exists so control-plane callers can distinguish "operator
  /// paused" from "stood down for good".
  void pause();
  void resume();
  bool paused() const { return paused_; }

  const ScrubberStats& stats() const { return stats_; }
  const ScrubStrategy& strategy() const { return *strategy_; }
  /// Mutable strategy access for checkpoint restore (cursor seeding
  /// before start()).
  ScrubStrategy& mutable_strategy() { return *strategy_; }
  SimTime wait_threshold() const { return wait_threshold_; }

  /// Retunes the policy parameters at runtime (used by the adaptive
  /// daemon). Takes effect from the next idle interval / next request.
  void set_wait_threshold(SimTime t) { wait_threshold_ = t; }
  void set_request_bytes(std::int64_t bytes) {
    strategy_->set_request_sectors(disk::sectors_from_bytes(bytes));
  }

  /// Attaches progress instrumentation (see ScrubProgressRecorder).
  void set_timeline(const obs::TimelineSink& sink) {
    progress_.set_timeline(sink);
  }

 private:
  void on_idle();
  void check_fire();
  void fire();

  Simulator& sim_;
  block::BlockLayer& blk_;
  std::unique_ptr<ScrubStrategy> strategy_;
  SimTime wait_threshold_;
  disk::CommandKind verify_kind_;
  ScrubberStats stats_;
  ScrubProgressRecorder progress_;
  bool running_ = false;
  bool armed_ = false;
  bool paused_ = false;
  EventId arm_event_ = 0;
};

}  // namespace pscrub::core
