// Scrubbing strategies: the order in which the disk's sectors are verified.
//
// The framework mirrors the paper's kernel API: a strategy is a tiny state
// machine yielding the next (lbn, sectors) to verify -- the paper's
// sequential and staggered implementations were ~50 LoC each on top of
// their framework, and so are these.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "disk/command.h"

namespace pscrub::core {

struct ScrubExtent {
  disk::Lbn lbn = 0;
  std::int64_t sectors = 0;
};

/// Serializable position of a strategy between two next() calls. `a` and
/// `b` are strategy-private coordinates (sequential: a = next LBN;
/// staggered: a = region index, b = round offset); `passes` is the
/// completed-pass count. The pair cursor()/restore() round-trips exactly:
/// a restored strategy yields the same extent sequence the original would
/// have. Daemon checkpoints persist these three integers per scrub.
struct ScrubCursor {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t passes = 0;
};

class ScrubStrategy {
 public:
  virtual ~ScrubStrategy() = default;

  /// Next extent to verify. Wraps around at the end of a full pass;
  /// completed_passes() advances.
  virtual ScrubExtent next() = 0;

  /// Restarts from the beginning of the disk.
  virtual void reset() = 0;

  /// Snapshot of the current position (see ScrubCursor).
  virtual ScrubCursor cursor() const = 0;

  /// Restores a cursor() snapshot. Throws std::invalid_argument when the
  /// coordinates are out of range for this strategy's geometry (e.g. a
  /// checkpoint taken under a different disk size).
  virtual void restore(const ScrubCursor& cursor) = 0;

  virtual std::int64_t completed_passes() const = 0;
  virtual const char* name() const = 0;

  /// Sectors in one full pass (progress/ETA denominator).
  virtual std::int64_t total_sectors() const = 0;

  /// Changes the verify granularity mid-run (adaptive request sizing).
  virtual void set_request_sectors(std::int64_t sectors) = 0;
  virtual std::int64_t request_sectors() const = 0;
};

/// Scans LBNs in increasing order: the production-system default.
class SequentialStrategy final : public ScrubStrategy {
 public:
  SequentialStrategy(std::int64_t total_sectors, std::int64_t request_sectors);

  ScrubExtent next() override;
  void reset() override;
  ScrubCursor cursor() const override;
  void restore(const ScrubCursor& cursor) override;
  std::int64_t completed_passes() const override { return passes_; }
  const char* name() const override { return "sequential"; }
  std::int64_t total_sectors() const override { return total_sectors_; }
  void set_request_sectors(std::int64_t sectors) override;
  std::int64_t request_sectors() const override { return request_sectors_; }

 private:
  std::int64_t total_sectors_;
  std::int64_t request_sectors_;
  disk::Lbn pos_ = 0;
  std::int64_t passes_ = 0;
};

/// Staggered scrubbing (Oprea & Juels, FAST'10): the disk is split into R
/// regions of S-sized segments; round k verifies the k-th segment of every
/// region in LBN order, probing the whole surface early in each pass.
class StaggeredStrategy final : public ScrubStrategy {
 public:
  StaggeredStrategy(std::int64_t total_sectors, std::int64_t request_sectors,
                    int regions);

  ScrubExtent next() override;
  void reset() override;
  ScrubCursor cursor() const override;
  void restore(const ScrubCursor& cursor) override;
  std::int64_t completed_passes() const override { return passes_; }
  const char* name() const override { return "staggered"; }
  std::int64_t total_sectors() const override { return total_sectors_; }
  void set_request_sectors(std::int64_t sectors) override;
  std::int64_t request_sectors() const override { return request_sectors_; }

  int regions() const { return regions_; }
  std::int64_t region_sectors() const { return region_sectors_; }

 private:
  std::int64_t total_sectors_;
  std::int64_t request_sectors_;
  int regions_;
  std::int64_t region_sectors_;
  int region_index_ = 0;          // which region this step probes
  std::int64_t segment_offset_ = 0;  // sector offset of the current round
  std::int64_t passes_ = 0;
};

std::unique_ptr<ScrubStrategy> make_sequential(std::int64_t total_sectors,
                                               std::int64_t request_bytes);
std::unique_ptr<ScrubStrategy> make_staggered(std::int64_t total_sectors,
                                              std::int64_t request_bytes,
                                              int regions);

}  // namespace pscrub::core
