#include "core/schedule_view.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace pscrub::core {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Staggered-geometry decomposition. Regions are ceil(total/R) sectors
/// each, so the tail of the disk holds at most one *partial* region
/// (`partial_sectors` > 0) followed by empty regions the strategy skips
/// within each round. Full regions participate in ceil(rs/req) rounds,
/// the partial one in ceil(partial/req).
struct StaggeredGeometry {
  std::int64_t full_regions = 0;     // regions of exactly region_sectors
  std::int64_t partial_sectors = 0;  // size of the one short region (or 0)
  std::int64_t full_rounds = 0;      // rounds a full region yields in
  std::int64_t partial_rounds = 0;   // rounds the partial region yields in
};

StaggeredGeometry geometry_of(const ScheduleView& v) {
  StaggeredGeometry g;
  g.full_regions = v.total_sectors / v.region_sectors;
  g.partial_sectors = v.total_sectors - g.full_regions * v.region_sectors;
  g.full_rounds = ceil_div(v.region_sectors, v.request_sectors);
  g.partial_rounds =
      g.partial_sectors > 0 ? ceil_div(g.partial_sectors, v.request_sectors)
                            : 0;
  return g;
}

}  // namespace

ScheduleView ScheduleView::sequential(std::int64_t total_sectors,
                                      std::int64_t request_sectors) {
  if (total_sectors <= 0 || request_sectors <= 0) {
    throw std::invalid_argument(
        "ScheduleView::sequential: sizes must be > 0, got total " +
        std::to_string(total_sectors) + ", request " +
        std::to_string(request_sectors));
  }
  ScheduleView v;
  v.kind = Kind::kSequential;
  v.total_sectors = total_sectors;
  v.request_sectors = request_sectors;
  return v;
}

ScheduleView ScheduleView::staggered(std::int64_t total_sectors,
                                     std::int64_t request_sectors,
                                     int regions) {
  if (total_sectors <= 0 || request_sectors <= 0) {
    throw std::invalid_argument(
        "ScheduleView::staggered: sizes must be > 0, got total " +
        std::to_string(total_sectors) + ", request " +
        std::to_string(request_sectors));
  }
  ScheduleView v;
  v.kind = Kind::kStaggered;
  v.total_sectors = total_sectors;
  v.request_sectors = request_sectors;
  v.regions = std::max(regions, 1);
  v.region_sectors = ceil_div(total_sectors, v.regions);
  if (v.region_sectors < request_sectors) {
    throw std::invalid_argument(
        "ScheduleView::staggered: " + std::to_string(v.regions) +
        " regions of " + std::to_string(v.region_sectors) +
        " sectors are too fine for " + std::to_string(request_sectors) +
        "-sector requests");
  }
  return v;
}

std::int64_t ScheduleView::steps_per_pass() const {
  if (kind == Kind::kSequential) {
    return ceil_div(total_sectors, request_sectors);
  }
  const StaggeredGeometry g = geometry_of(*this);
  return g.full_regions * g.full_rounds + g.partial_rounds;
}

std::int64_t ScheduleView::step_of(disk::Lbn sector) const {
  assert(sector >= 0 && sector < total_sectors);
  if (kind == Kind::kSequential) {
    return sector / request_sectors;
  }
  const StaggeredGeometry g = geometry_of(*this);
  const std::int64_t region = sector / region_sectors;
  const std::int64_t round = (sector % region_sectors) / request_sectors;
  // Rounds before this one: every full region yielded `round` extents
  // (round < full_rounds is guaranteed for any covered sector), the
  // partial region min(round, partial_rounds). Within the round, the
  // yielding regions are a contiguous index prefix, so `region` extents
  // precede this one.
  return g.full_regions * round + std::min(round, g.partial_rounds) + region;
}

ScrubExtent ScheduleView::extent_at(std::int64_t step) const {
  assert(step >= 0 && step < steps_per_pass());
  ScrubExtent e;
  if (kind == Kind::kSequential) {
    e.lbn = step * request_sectors;
    e.sectors = std::min(request_sectors, total_sectors - e.lbn);
    return e;
  }
  const StaggeredGeometry g = geometry_of(*this);
  std::int64_t round = 0;
  std::int64_t remaining = step;
  for (;;) {
    const std::int64_t in_round =
        g.full_regions + (round < g.partial_rounds ? 1 : 0);
    if (remaining < in_round) break;
    remaining -= in_round;
    ++round;
  }
  const std::int64_t region = remaining;
  const std::int64_t region_size =
      region < g.full_regions ? region_sectors : g.partial_sectors;
  e.lbn = region * region_sectors + round * request_sectors;
  e.sectors = std::min(request_sectors, region_size - round * request_sectors);
  return e;
}

}  // namespace pscrub::core
