// The paper's tuning procedure (Sec V-C/V-D): given an administrator's
// average (and maximum) tolerable per-request slowdown, find the scrub
// request size and Waiting threshold that maximize scrub throughput.
//
// For a fixed request size, mean slowdown decreases monotonically in the
// wait threshold, so the optimal threshold is found by binary search; the
// request size is then chosen by comparing the per-size maxima.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy_sim.h"

namespace pscrub::core {

struct SlowdownGoal {
  /// Average tolerable slowdown per foreground request.
  SimTime mean = 1 * kMillisecond;
  /// Maximum tolerable slowdown: bounds the request size via its service
  /// time (the paper used 50.4 ms, which caps requests at 4 MB).
  SimTime max = from_seconds(50.4e-3);
};

struct SizeThresholdChoice {
  std::int64_t request_bytes = 0;
  SimTime threshold = 0;
  double scrub_mb_s = 0.0;
  double achieved_mean_slowdown_ms = 0.0;
  double collision_rate = 0.0;
};

struct OptimizerConfig {
  trace::ServiceModel foreground_service;
  /// Scrub request service model. Must be a pure function of the size
  /// (every cost_model.h factory is): the probes evaluate it once per
  /// candidate size and feed the batched evaluator that constant.
  ScrubServiceFn scrub_service;
  /// Optional precomputed per-record service times (see
  /// core::precompute_services); strongly recommended -- the optimizer
  /// runs hundreds of sweeps over the same trace.
  const std::vector<SimTime>* services = nullptr;
  /// Optional idle decomposition of (trace, services) precomputed via
  /// IdleDecomposition::from_trace; lets callers running several
  /// optimize() calls on one trace (e.g. one per slowdown goal) share the
  /// single O(records) extraction. Built internally when null.
  const IdleDecomposition* decomposition = nullptr;
  /// Candidate request sizes; defaults to 64 KB..4 MB in 64 KB-aligned
  /// steps (coarse-to-fine grid).
  std::vector<std::int64_t> candidate_sizes;
  SimTime min_threshold = 1 * kMillisecond;
  SimTime max_threshold = 10 * kSecond;
  int binary_search_iters = 14;
  /// Worker threads for the per-size fan-out in optimize() (0 = hardware
  /// concurrency, 1 = serial). The result is bit-identical for any value:
  /// sizes are evaluated as independent tasks and reduced in grid order.
  int workers = 0;
};

std::vector<std::int64_t> default_size_grid();

/// Smallest Waiting threshold whose mean slowdown meets `goal_mean` for a
/// fixed request size (binary search; returns max_threshold when even that
/// fails to meet the goal). Each probe is an O(intervals) batched
/// evaluation against the idle decomposition (config.decomposition, or a
/// fresh extraction when null) -- bit-identical to the reference replay
/// the probes used to run, which remains available as
/// run_policy_sim_reference and is what the probes fall back to while the
/// obs tracer is recording (the reference path emits the per-interval
/// decision instants).
SizeThresholdChoice tune_threshold_for_size(const trace::Trace& trace,
                                            const OptimizerConfig& config,
                                            std::int64_t request_bytes,
                                            SimTime goal_mean);

/// Full optimization: best (size, threshold) for a slowdown goal. The
/// per-size threshold searches are independent and run on an exp::sweep
/// worker pool (config.workers). When config.services is null the
/// foreground model is precomputed over the trace once, up front -- the
/// stateful ServiceModel never runs concurrently.
SizeThresholdChoice optimize(const trace::Trace& trace,
                             const OptimizerConfig& config,
                             const SlowdownGoal& goal);

}  // namespace pscrub::core
