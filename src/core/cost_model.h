// Glue between disk profiles and the trace-driven policy simulator:
// service-time models for foreground records and scrub requests.
#pragma once

#include "core/policy_sim.h"
#include "disk/profile.h"
#include "trace/idle.h"

namespace pscrub::core {

/// Foreground service model: sequential continuations are cheap (settled
/// head, streaming), everything else pays an average seek plus rotation.
/// Stateful (tracks the last accessed LBN); create one per simulation run.
trace::ServiceModel make_foreground_service(const disk::DiskProfile& profile);

/// Scrub (VERIFY) service model for back-to-back sequential scrubbing.
ScrubServiceFn make_scrub_service(const disk::DiskProfile& profile);

/// Scrub service model for a staggered scrubber with `regions` regions.
ScrubServiceFn make_staggered_scrub_service(const disk::DiskProfile& profile,
                                            int regions);

/// Fixed-size request stream for the batched Waiting evaluator
/// (run_waiting_grid / run_waiting_single): `request_bytes` priced by the
/// profile's sequential VERIFY model, i.e. exactly what
/// make_scrub_service(profile)(request_bytes) would return.
WaitingGridRequest make_waiting_grid_request(const disk::DiskProfile& profile,
                                             std::int64_t request_bytes);

}  // namespace pscrub::core
