// Glue between disk profiles and the trace-driven policy simulator:
// service-time models for foreground records and scrub requests.
#pragma once

#include "core/policy_sim.h"
#include "disk/profile.h"
#include "trace/idle.h"

namespace pscrub::core {

/// Foreground service model: sequential continuations are cheap (settled
/// head, streaming), everything else pays an average seek plus rotation.
/// Stateful (tracks the last accessed LBN); create one per simulation run.
trace::ServiceModel make_foreground_service(const disk::DiskProfile& profile);

/// Scrub (VERIFY) service model for back-to-back sequential scrubbing.
ScrubServiceFn make_scrub_service(const disk::DiskProfile& profile);

/// Scrub service model for a staggered scrubber with `regions` regions.
ScrubServiceFn make_staggered_scrub_service(const disk::DiskProfile& profile,
                                            int regions);

}  // namespace pscrub::core
