#include "core/lse.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pscrub::core {

std::vector<LseBurst> generate_lse_bursts(const LseModelConfig& config,
                                          std::int64_t total_sectors,
                                          SimTime horizon, Rng& rng) {
  std::vector<LseBurst> bursts;
  const std::int64_t span_sectors =
      std::max<std::int64_t>(1, config.burst_span_bytes / disk::kSectorBytes);
  SimTime t = 0;
  while (true) {
    t += from_seconds(
        rng.exponential(to_seconds(config.burst_interarrival_mean)));
    if (t >= horizon) break;
    LseBurst b;
    b.occurred = t;
    std::int64_t count = 1;
    if (!rng.bernoulli(config.isolated_fraction)) {
      // 1 + geometric(mean = extra_errors_per_burst_mean).
      const double p = 1.0 / (config.extra_errors_per_burst_mean + 1.0);
      while (!rng.bernoulli(p)) ++count;
    }
    const std::int64_t base =
        rng.uniform_int(0, std::max<std::int64_t>(1, total_sectors - span_sectors));
    for (std::int64_t i = 0; i < count; ++i) {
      b.sectors.push_back(base + rng.uniform_int(0, span_sectors - 1));
    }
    std::sort(b.sectors.begin(), b.sectors.end());
    b.sectors.erase(std::unique(b.sectors.begin(), b.sectors.end()),
                    b.sectors.end());
    bursts.push_back(std::move(b));
  }
  return bursts;
}

namespace {

/// One pass of the strategy flattened into (lbn -> scrub offset) lookup.
struct Schedule {
  struct Entry {
    disk::Lbn lbn;
    std::int64_t sectors;
    SimTime offset;  // start of this extent's verify within the pass
  };
  std::vector<Entry> by_lbn;
  SimTime pass_duration = 0;

  /// Scrub offset of the extent containing `sector`.
  SimTime offset_of(disk::Lbn sector) const {
    auto it = std::upper_bound(
        by_lbn.begin(), by_lbn.end(), sector,
        [](disk::Lbn s, const Entry& e) { return s < e.lbn; });
    assert(it != by_lbn.begin());
    --it;
    assert(sector >= it->lbn && sector < it->lbn + it->sectors);
    return it->offset;
  }
};

Schedule build_schedule(ScrubStrategy& strategy, std::int64_t total_sectors,
                        const MletConfig& config) {
  strategy.reset();
  Schedule sched;
  const SimTime step = config.request_service + config.request_spacing;
  std::int64_t covered = 0;
  SimTime offset = 0;
  while (covered < total_sectors) {
    const ScrubExtent e = strategy.next();
    sched.by_lbn.push_back({e.lbn, e.sectors, offset});
    covered += e.sectors;
    offset += step;
  }
  sched.pass_duration = offset;
  std::sort(sched.by_lbn.begin(), sched.by_lbn.end(),
            [](const Schedule::Entry& a, const Schedule::Entry& b) {
              return a.lbn < b.lbn;
            });
  return sched;
}

}  // namespace

MletResult evaluate_mlet(ScrubStrategy& strategy, std::int64_t total_sectors,
                         const std::vector<LseBurst>& bursts,
                         const MletConfig& config) {
  const Schedule sched = build_schedule(strategy, total_sectors, config);
  MletResult out;
  out.pass_hours = to_seconds(sched.pass_duration) / 3600.0;

  double delay_sum_hours = 0.0;
  for (const LseBurst& b : bursts) {
    const SimTime tau = b.occurred;
    const SimTime phase = tau % sched.pass_duration;

    if (config.scrub_on_detection) {
      // The burst is detected when the first probe hits any of its
      // sectors; the enclosing area is then scanned immediately.
      SimTime min_delay = sched.pass_duration;
      for (disk::Lbn s : b.sectors) {
        const SimTime o = sched.offset_of(s);
        SimTime d = o - phase;
        if (d < 0) d += sched.pass_duration;
        min_delay = std::min(min_delay, d);
      }
      const double hours = to_seconds(min_delay) / 3600.0;
      delay_sum_hours += hours * static_cast<double>(b.sectors.size());
      out.worst_hours = std::max(out.worst_hours, hours);
      out.errors += static_cast<std::int64_t>(b.sectors.size());
    } else {
      // Each error waits for its own segment's scrub.
      for (disk::Lbn s : b.sectors) {
        const SimTime o = sched.offset_of(s);
        SimTime d = o - phase;
        if (d < 0) d += sched.pass_duration;
        const double hours = to_seconds(d) / 3600.0;
        delay_sum_hours += hours;
        out.worst_hours = std::max(out.worst_hours, hours);
        ++out.errors;
      }
    }
  }
  if (out.errors > 0) {
    out.mlet_hours = delay_sum_hours / static_cast<double>(out.errors);
  }
  return out;
}

SimTime sector_detection_delay(const ScheduleView& schedule, disk::Lbn sector,
                               SimTime phase, SimTime step,
                               SimTime pass_duration) {
  const SimTime offset = schedule.step_of(sector) * step;
  SimTime d = offset - phase;
  if (d < 0) d += pass_duration;
  return d;
}

SimTime burst_detection_delay(const ScheduleView& schedule,
                              const disk::Lbn* sectors, std::size_t count,
                              SimTime phase, SimTime step,
                              SimTime pass_duration) {
  assert(count > 0);
  SimTime min_delay = pass_duration;
  for (std::size_t i = 0; i < count; ++i) {
    min_delay = std::min(min_delay, sector_detection_delay(
                                        schedule, sectors[i], phase, step,
                                        pass_duration));
  }
  return min_delay;
}

MletResult evaluate_mlet(const ScheduleView& schedule,
                         const std::vector<LseBurst>& bursts,
                         const MletConfig& config,
                         std::vector<SimTime>* detect_times) {
  const SimTime step = config.request_service + config.request_spacing;
  const SimTime pass_duration = schedule.steps_per_pass() * step;
  MletResult out;
  out.pass_hours = to_seconds(pass_duration) / 3600.0;
  if (detect_times != nullptr) {
    detect_times->assign(bursts.size(), 0);
  }

  double delay_sum_hours = 0.0;
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    const LseBurst& b = bursts[bi];
    const SimTime phase = b.occurred % pass_duration;
    const SimTime first_probe = burst_detection_delay(
        schedule, b.sectors.data(), b.sectors.size(), phase, step,
        pass_duration);
    if (detect_times != nullptr) {
      (*detect_times)[bi] = b.occurred + first_probe;
    }

    if (config.scrub_on_detection) {
      const double hours = to_seconds(first_probe) / 3600.0;
      delay_sum_hours += hours * static_cast<double>(b.sectors.size());
      out.worst_hours = std::max(out.worst_hours, hours);
      out.errors += static_cast<std::int64_t>(b.sectors.size());
    } else {
      for (disk::Lbn s : b.sectors) {
        const SimTime d =
            sector_detection_delay(schedule, s, phase, step, pass_duration);
        const double hours = to_seconds(d) / 3600.0;
        delay_sum_hours += hours;
        out.worst_hours = std::max(out.worst_hours, hours);
        ++out.errors;
      }
    }
  }
  if (out.errors > 0) {
    out.mlet_hours = delay_sum_hours / static_cast<double>(out.errors);
  }
  return out;
}

}  // namespace pscrub::core
