#include "stats/autocorrelation.h"

#include <cmath>
#include <numeric>

#include "stats/descriptive.h"

namespace pscrub::stats {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const Summary s = summarize(xs);
  if (s.variance <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    acc += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
  }
  return acc / (static_cast<double>(n) * s.variance);
}

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  const std::size_t n = xs.size();
  const Summary s = summarize(xs);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    if (s.variance <= 0.0 || lag >= n) {
      out.push_back(lag == 0 ? 1.0 : 0.0);
      continue;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
    }
    out.push_back(acc / (static_cast<double>(n) * s.variance));
  }
  return out;
}

bool strongly_autocorrelated(std::span<const double> xs, std::size_t max_lag,
                             double required_fraction) {
  if (xs.size() < 2 * max_lag) return false;
  const double band = 1.96 / std::sqrt(static_cast<double>(xs.size()));
  const std::vector<double> r = acf(xs, max_lag);
  std::size_t significant = 0;
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    if (std::abs(r[lag]) > band) ++significant;
  }
  return static_cast<double>(significant) >=
         required_fraction * static_cast<double>(max_lag);
}

double hurst_aggregated_variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 64) return 0.5;
  // Aggregate at block sizes m = 1, 2, 4, ... while >= 8 blocks remain;
  // regress log Var(X^(m)) on log m. Slope = 2H - 2.
  std::vector<double> log_m;
  std::vector<double> log_var;
  for (std::size_t m = 1; n / m >= 8; m *= 2) {
    const std::size_t blocks = n / m;
    Accumulator acc;
    for (std::size_t b = 0; b < blocks; ++b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) sum += xs[b * m + i];
      acc.add(sum / static_cast<double>(m));
    }
    const Summary s = acc.summary();
    if (s.variance <= 0.0) break;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(s.variance));
  }
  if (log_m.size() < 3) return 0.5;
  // Least-squares slope.
  const double mx = std::accumulate(log_m.begin(), log_m.end(), 0.0) /
                    static_cast<double>(log_m.size());
  const double my = std::accumulate(log_var.begin(), log_var.end(), 0.0) /
                    static_cast<double>(log_var.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < log_m.size(); ++i) {
    num += (log_m[i] - mx) * (log_var[i] - my);
    den += (log_m[i] - mx) * (log_m[i] - mx);
  }
  if (den <= 0.0) return 0.5;
  const double slope = num / den;
  double h = 1.0 + slope / 2.0;
  if (h < 0.0) h = 0.0;
  if (h > 1.0) h = 1.0;
  return h;
}

}  // namespace pscrub::stats
