// Autoregressive Conditional Duration model (Engle & Russell 1998).
//
// The paper reports attempting ACD (and ARIMA) for idle-duration
// prediction and abandoning them: "AR(p) is the only model that can be
// fitted quickly and efficiently to the millions of samples that need to
// be factored at the I/O level." We implement ACD(1,1) so that claim is
// testable: the fit is iterative maximum-likelihood and costs far more
// per sample than one Yule-Walker solve.
//
// Model: duration x_i = psi_i * eps_i with E[eps]=1 (exponential), and
//   psi_i = omega + alpha * x_{i-1} + beta * psi_{i-1}.
// One-step forecast is psi_{i+1} itself.
#pragma once

#include <cstddef>
#include <span>

namespace pscrub::stats {

struct AcdModel {
  double omega = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
  double mean = 0.0;        // sample mean (fallback / init)
  double log_likelihood = 0.0;
  bool fitted = false;

  /// One-step forecast of the next duration given the history.
  double forecast(std::span<const double> history) const;

  /// Unconditional mean omega / (1 - alpha - beta), if stationary.
  double unconditional_mean() const;
};

struct AcdFitStats {
  std::size_t iterations = 0;
  std::size_t likelihood_evaluations = 0;
};

/// Fits ACD(1,1) by exponential quasi-maximum-likelihood using a
/// coordinate grid refinement (derivative-free; robust on heavy-tailed
/// data). `stats`, when non-null, reports how much work the fit did --
/// the quantity the paper's complaint is about.
AcdModel fit_acd(std::span<const double> xs, std::size_t max_iters = 12,
                 AcdFitStats* stats = nullptr);

/// Exponential QML log-likelihood of the data under (omega, alpha, beta);
/// exposed for tests.
double acd_log_likelihood(std::span<const double> xs, double omega,
                          double alpha, double beta);

}  // namespace pscrub::stats
