#include "stats/residual_life.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace pscrub::stats {

ResidualLife::ResidualLife(std::vector<double> idle_durations)
    : sorted_(std::move(idle_durations)) {
  std::sort(sorted_.begin(), sorted_.end());
  suffix_sum_.assign(sorted_.size() + 1, 0.0);
  for (std::size_t i = sorted_.size(); i-- > 0;) {
    suffix_sum_[i] = suffix_sum_[i + 1] + sorted_[i];
  }
  total_ = suffix_sum_.empty() ? 0.0 : suffix_sum_[0];
}

double ResidualLife::mean() const {
  return sorted_.empty() ? 0.0 : total_ / static_cast<double>(sorted_.size());
}

std::size_t ResidualLife::first_above(double x) const {
  return static_cast<std::size_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), x) - sorted_.begin());
}

double ResidualLife::tail_weight(double frac_of_largest) const {
  if (sorted_.empty() || total_ <= 0.0) return 0.0;
  if (frac_of_largest <= 0.0) return 0.0;
  if (frac_of_largest >= 1.0) return 1.0;
  const auto k = static_cast<std::size_t>(
      std::llround(frac_of_largest * static_cast<double>(sorted_.size())));
  if (k == 0) return 0.0;
  return suffix_sum_[sorted_.size() - k] / total_;
}

double ResidualLife::mean_residual(double x) const {
  const std::size_t i = first_above(x);
  const std::size_t n_above = sorted_.size() - i;
  if (n_above == 0) return 0.0;
  return suffix_sum_[i] / static_cast<double>(n_above) - x;
}

double ResidualLife::residual_quantile(double x, double p) const {
  const std::size_t i = first_above(x);
  if (i == sorted_.size()) return 0.0;
  std::span<const double> above(sorted_.data() + i, sorted_.size() - i);
  return quantile_sorted(above, p) - x;
}

double ResidualLife::usable_fraction(double x) const {
  if (total_ <= 0.0) return 0.0;
  const std::size_t i = first_above(x);
  const std::size_t n_above = sorted_.size() - i;
  const double usable = suffix_sum_[i] - x * static_cast<double>(n_above);
  return usable / total_;
}

double ResidualLife::survival(double x) const {
  if (sorted_.empty()) return 0.0;
  return static_cast<double>(sorted_.size() - first_above(x)) /
         static_cast<double>(sorted_.size());
}

double ResidualLife::hazard(double x, double dx) const {
  const std::size_t at_risk = sorted_.size() - first_above(x);
  if (at_risk == 0) return 0.0;
  const std::size_t still = sorted_.size() - first_above(x + dx);
  return static_cast<double>(at_risk - still) / static_cast<double>(at_risk);
}

}  // namespace pscrub::stats
