// One-way ANOVA periodicity detection (Sec V-A "Periodicity", Fig 9).
//
// The trace's hourly request counts are folded at each candidate period P:
// hour i lands in group (i mod P). If the workload repeats every P hours,
// the group means differ far more than chance -- a large F statistic. The
// detected period is the candidate with the most significant F; if no
// candidate is significant the paper reports a period of one hour
// ("no periodicity identified").
#pragma once

#include <span>
#include <vector>

namespace pscrub::stats {

struct AnovaResult {
  double f_statistic = 0.0;
  double p_value = 1.0;
  std::size_t df_between = 0;
  std::size_t df_within = 0;
};

/// One-way ANOVA across `groups` (each a sample of observations).
AnovaResult one_way_anova(std::span<const std::vector<double>> groups);

struct PeriodResult {
  /// Detected period in hours; 1 means no significant periodicity.
  std::size_t period_hours = 1;
  double f_statistic = 0.0;
  double p_value = 1.0;
};

/// Scans candidate periods [2, max_period_hours] over hourly counts and
/// returns the most significant one (smallest p, ties by larger F).
PeriodResult detect_period(std::span<const double> hourly_counts,
                           std::size_t max_period_hours = 36,
                           double significance = 0.01);

/// Regularized incomplete beta function I_x(a, b), exposed for tests.
double incomplete_beta(double a, double b, double x);

/// Upper tail probability of the F(d1, d2) distribution at `f`.
double f_distribution_sf(double f, double d1, double d2);

}  // namespace pscrub::stats
