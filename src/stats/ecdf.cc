#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace pscrub::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  return quantile_sorted(sorted_, p);
}

std::vector<Ecdf::Point> Ecdf::curve_logspace(double lo, double hi,
                                              int points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points < 2 || lo <= 0 || hi <= lo) return out;
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        std::pow(10.0, llo + (lhi - llo) * i / static_cast<double>(points - 1));
    out.push_back({x, at(x)});
  }
  return out;
}

}  // namespace pscrub::stats
