#include "stats/acd_model.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace pscrub::stats {

double acd_log_likelihood(std::span<const double> xs, double omega,
                          double alpha, double beta) {
  if (xs.empty()) return 0.0;
  const Summary s = summarize(xs);
  double psi = s.mean > 0 ? s.mean : 1.0;  // initialize at the mean
  double ll = 0.0;
  for (double x : xs) {
    if (psi < 1e-12) psi = 1e-12;
    // Exponential QML: -log(psi) - x / psi.
    ll += -std::log(psi) - x / psi;
    psi = omega + alpha * x + beta * psi;
  }
  return ll;
}

double AcdModel::forecast(std::span<const double> history) const {
  if (!fitted || history.empty()) return mean;
  // Re-run the recursion over the (recent) history to get psi_{t+1}.
  double psi = mean > 0 ? mean : 1.0;
  for (double x : history) {
    psi = omega + alpha * x + beta * psi;
    if (psi < 1e-12) psi = 1e-12;
  }
  return psi;
}

double AcdModel::unconditional_mean() const {
  const double denom = 1.0 - alpha - beta;
  if (denom <= 1e-9) return mean;
  return omega / denom;
}

AcdModel fit_acd(std::span<const double> xs, std::size_t max_iters,
                 AcdFitStats* stats) {
  AcdModel m;
  const Summary s = summarize(xs);
  m.mean = s.mean;
  if (xs.size() < 32 || s.mean <= 0.0) return m;

  // Coordinate grid refinement over (alpha, beta) with omega tied to the
  // sample mean: omega = mean * (1 - alpha - beta). Each refinement pass
  // halves the grid step around the incumbent.
  double best_a = 0.1;
  double best_b = 0.5;
  double step = 0.2;
  double best_ll = -1e300;
  std::size_t evals = 0;
  std::size_t iters = 0;

  for (std::size_t pass = 0; pass < max_iters; ++pass) {
    ++iters;
    bool improved = false;
    for (double a = std::max(0.0, best_a - 2 * step);
         a <= std::min(0.98, best_a + 2 * step); a += step) {
      for (double b = std::max(0.0, best_b - 2 * step);
           b <= std::min(0.98, best_b + 2 * step); b += step) {
        if (a + b >= 0.99) continue;  // stationarity
        const double omega = s.mean * (1.0 - a - b);
        const double ll = acd_log_likelihood(xs, omega, a, b);
        ++evals;
        if (ll > best_ll) {
          best_ll = ll;
          best_a = a;
          best_b = b;
          improved = true;
        }
      }
    }
    step /= 2.0;
    if (!improved && step < 1e-3) break;
  }

  m.alpha = best_a;
  m.beta = best_b;
  m.omega = s.mean * (1.0 - best_a - best_b);
  m.log_likelihood = best_ll;
  m.fitted = true;
  if (stats != nullptr) {
    stats->iterations = iters;
    stats->likelihood_evaluations = evals;
  }
  return m;
}

}  // namespace pscrub::stats
