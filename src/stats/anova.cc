#include "stats/anova.h"

#include <cmath>

#include "stats/descriptive.h"

namespace pscrub::stats {

namespace {

// Lentz's continued-fraction evaluation for the incomplete beta function.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  // Use the symmetry relation for numerical stability.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double f_distribution_sf(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  // P(F > f) = I_{d2/(d2 + d1 f)}(d2/2, d1/2).
  const double x = d2 / (d2 + d1 * f);
  return incomplete_beta(d2 / 2.0, d1 / 2.0, x);
}

AnovaResult one_way_anova(std::span<const std::vector<double>> groups) {
  AnovaResult r;
  std::size_t k = 0;  // non-empty groups
  std::size_t n = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    ++k;
    n += g.size();
    for (double x : g) grand_sum += x;
  }
  if (k < 2 || n <= k) return r;
  const double grand_mean = grand_sum / static_cast<double>(n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    double sum = 0.0;
    for (double x : g) sum += x;
    const double mean = sum / static_cast<double>(g.size());
    ss_between +=
        static_cast<double>(g.size()) * (mean - grand_mean) * (mean - grand_mean);
    for (double x : g) ss_within += (x - mean) * (x - mean);
  }
  r.df_between = k - 1;
  r.df_within = n - k;
  const double ms_between = ss_between / static_cast<double>(r.df_between);
  const double ms_within = ss_within / static_cast<double>(r.df_within);
  if (ms_within <= 0.0) {
    // Perfectly repeating signal: infinitely significant.
    r.f_statistic = ss_between > 0.0 ? 1e30 : 0.0;
    r.p_value = ss_between > 0.0 ? 0.0 : 1.0;
    return r;
  }
  r.f_statistic = ms_between / ms_within;
  r.p_value = f_distribution_sf(r.f_statistic,
                                static_cast<double>(r.df_between),
                                static_cast<double>(r.df_within));
  return r;
}

PeriodResult detect_period(std::span<const double> hourly_counts,
                           std::size_t max_period_hours, double significance) {
  PeriodResult best;
  const std::size_t n = hourly_counts.size();
  // Bonferroni correction: we test up to (max_period_hours - 1) candidate
  // periods, so an uncorrected per-test threshold would produce spurious
  // detections on heavy-tailed aperiodic traffic.
  const double corrected =
      significance / static_cast<double>(max_period_hours > 1
                                             ? max_period_hours - 1
                                             : 1);
  for (std::size_t period = 2; period <= max_period_hours; ++period) {
    if (n < 2 * period) break;  // need at least two full cycles
    std::vector<std::vector<double>> groups(period);
    for (std::size_t i = 0; i < n; ++i) {
      groups[i % period].push_back(hourly_counts[i]);
    }
    const AnovaResult r = one_way_anova(groups);
    if (r.p_value < corrected) {
      // Harmonics of the true period also score; prefer the smallest
      // period whose significance is within a factor of the best seen, by
      // scanning ascending and only replacing on a materially better p.
      if (best.period_hours == 1 || r.p_value < best.p_value * 1e-3 ||
          (r.p_value <= best.p_value && r.f_statistic > best.f_statistic)) {
        best.period_hours = period;
        best.f_statistic = r.f_statistic;
        best.p_value = r.p_value;
      }
    }
  }
  return best;
}

}  // namespace pscrub::stats
