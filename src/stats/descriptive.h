// Descriptive statistics used throughout the trace analysis (Table II).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pscrub::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance (paper reports these)
  double stddev = 0.0;
  double cov = 0.0;  // coefficient of variation: stddev / mean
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// One-pass summary (Welford) of a sample.
Summary summarize(std::span<const double> xs);

/// Streaming accumulator for the same quantities.
class Accumulator {
 public:
  void add(double x);
  Summary summary() const;
  std::size_t count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact p-quantile (linear interpolation) of an unsorted sample.
/// p in [0, 1].
double quantile(std::vector<double> xs, double p);

/// Quantile of an already ascending-sorted sample (no copy).
double quantile_sorted(std::span<const double> sorted, double p);

}  // namespace pscrub::stats
