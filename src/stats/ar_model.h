// Autoregressive AR(p) model over inter-arrival durations (Sec V-B.1).
//
// The paper regresses the next request inter-arrival interval on the p
// previous ones:
//   X_t = mu + sum_i a_i (X_{t-i} - mu) + eps_t
// fitting with Yule-Walker (sample autocovariances solved by
// Levinson-Durbin) and selecting p with Akaike's Information Criterion.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pscrub::stats {

struct ArModel {
  double mu = 0.0;
  std::vector<double> coeffs;   // a_1 .. a_p
  double noise_variance = 0.0;  // innovation variance sigma^2
  double aic = 0.0;

  std::size_t order() const { return coeffs.size(); }

  /// One-step forecast given the most recent observations
  /// (history.back() is X_{t-1}). Requires history.size() >= order().
  double forecast(std::span<const double> history) const;
};

/// Fits AR(p) for a fixed order p via Yule-Walker. Requires
/// xs.size() > p + 1.
ArModel fit_ar(std::span<const double> xs, std::size_t p);

/// Fits AR(p) for p in [1, max_order], returning the order minimizing
/// AIC = n * ln(sigma^2) + 2p.
ArModel fit_ar_aic(std::span<const double> xs, std::size_t max_order = 20);

/// Online AR predictor: refits on a sliding window every `refit_every`
/// observations, so millions of samples can be handled at I/O rates (the
/// property that made AR(p) the only viable model family in the paper).
class OnlineArPredictor {
 public:
  OnlineArPredictor(std::size_t window, std::size_t refit_every,
                    std::size_t max_order = 10);

  /// Feeds one observed duration.
  void observe(double x);

  /// Predicts the next duration; falls back to the running mean until
  /// enough history accumulates.
  double predict() const;

  bool fitted() const { return model_.order() > 0; }
  const ArModel& model() const { return model_; }

 private:
  std::size_t window_;
  std::size_t refit_every_;
  std::size_t max_order_;
  std::size_t since_fit_ = 0;
  std::vector<double> history_;  // ring-ish: trimmed to window on refit
  double running_sum_ = 0.0;
  std::size_t total_ = 0;
  ArModel model_;
};

}  // namespace pscrub::stats
