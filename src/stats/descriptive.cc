#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace pscrub::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Summary Accumulator::summary() const {
  Summary s;
  s.count = n_;
  if (n_ == 0) return s;
  s.mean = mean_;
  s.variance = m2_ / static_cast<double>(n_);
  s.stddev = std::sqrt(s.variance);
  s.cov = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  return s;
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.summary();
}

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 1.0) return sorted.back();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, p);
}

}  // namespace pscrub::stats
