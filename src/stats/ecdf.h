// Empirical cumulative distribution function.
//
// Used for the response-time CDFs of Fig 7 and for quantile queries over
// idle-interval samples.
#pragma once

#include <span>
#include <vector>

namespace pscrub::stats {

class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;

  /// Inverse: smallest sample value q with at(q) >= p.
  double quantile(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Evaluates the CDF at `points` x-positions log-spaced over
  /// [max(min_sample, lo), hi]; convenient for plotting Fig 7-style curves.
  struct Point {
    double x;
    double p;
  };
  std::vector<Point> curve_logspace(double lo, double hi, int points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace pscrub::stats
