// Idle-interval tail and residual-life analysis (Sec V-A, Figs 10-13).
//
// Given the sample of idle-interval durations of a trace, this class
// answers the four questions the paper asks:
//   Fig 10: what fraction of total idle time do the x% largest intervals
//           hold? (tail weight)
//   Fig 11: after being idle for x, how much longer is the system expected
//           to stay idle? (mean residual life -- increasing iff hazard
//           rates decrease)
//   Fig 12: the pessimistic version: the 1st percentile of remaining idle
//           time after x.
//   Fig 13: if scrubbing only starts after waiting x, what fraction of the
//           total idle time is still usable?
//
// All queries run on a sorted copy with suffix sums: O(log n) each.
#pragma once

#include <span>
#include <vector>

namespace pscrub::stats {

class ResidualLife {
 public:
  explicit ResidualLife(std::vector<double> idle_durations);

  std::size_t count() const { return sorted_.size(); }
  double total_idle() const { return total_; }
  double mean() const;

  /// Fig 10: fraction of total idle time contained in the `frac` largest
  /// intervals (frac in [0,1]).
  double tail_weight(double frac_of_largest) const;

  /// Fig 11: E[X - x | X > x]. Returns 0 when no interval exceeds x.
  double mean_residual(double x) const;

  /// Fig 12: p-quantile of (X - x | X > x); p = 0.01 gives the paper's
  /// "1st percentile of idle time remaining".
  double residual_quantile(double x, double p) const;

  /// Fig 13: sum over intervals longer than x of (X - x), divided by the
  /// total idle time: the fraction still usable after waiting x.
  double usable_fraction(double x) const;

  /// Fraction of intervals longer than x (the paper's bound on how many
  /// intervals a Waiting(t=x) policy fires in -- i.e. its collision
  /// opportunities).
  double survival(double x) const;

  /// Empirical hazard proxy: probability that an interval ends within
  /// (x, x + dx] given it reached x.
  double hazard(double x, double dx) const;

  const std::vector<double>& sorted() const { return sorted_; }

 private:
  /// Index of the first sorted element strictly greater than x.
  std::size_t first_above(double x) const;

  std::vector<double> sorted_;       // ascending
  std::vector<double> suffix_sum_;   // suffix_sum_[i] = sum(sorted_[i..])
  double total_ = 0.0;
};

}  // namespace pscrub::stats
