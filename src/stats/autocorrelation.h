// Autocorrelation analysis (Sec V-A "Autocorrelation").
//
// The paper checks whether recent idle-interval lengths predict future
// ones, reporting that 44 of the busiest 63 disk traces exhibit strong
// autocorrelation, and cites prior Hurst-parameter evidence (> 0.5).
#pragma once

#include <span>
#include <vector>

namespace pscrub::stats {

/// Sample autocorrelation at `lag` (biased estimator, as standard).
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// ACF for lags 0..max_lag (acf[0] == 1).
std::vector<double> acf(std::span<const double> xs, std::size_t max_lag);

/// "Strong autocorrelation" criterion used by our Fig-9-adjacent analysis:
/// a significant fraction of low-order lags exceed the ~95% white-noise
/// band 1.96/sqrt(n).
bool strongly_autocorrelated(std::span<const double> xs,
                             std::size_t max_lag = 50,
                             double required_fraction = 0.5);

/// Hurst exponent estimate via aggregated-variance: Var(X^(m)) ~ m^(2H-2).
/// Returns 0.5 for short or degenerate inputs.
double hurst_aggregated_variance(std::span<const double> xs);

}  // namespace pscrub::stats
