#include "stats/ar_model.h"

#include <cassert>
#include <cmath>

#include "stats/descriptive.h"

namespace pscrub::stats {

double ArModel::forecast(std::span<const double> history) const {
  assert(history.size() >= coeffs.size());
  double x = mu;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    x += coeffs[i] * (history[history.size() - 1 - i] - mu);
  }
  return x;
}

ArModel fit_ar(std::span<const double> xs, std::size_t p) {
  ArModel m;
  const std::size_t n = xs.size();
  if (p == 0 || n <= p + 1) return m;

  const Summary s = summarize(xs);
  m.mu = s.mean;
  if (s.variance <= 0.0) {
    // Constant series: AR is degenerate; forecast is the mean.
    m.noise_variance = 0.0;
    m.aic = -1e30;
    return m;
  }

  // Sample autocovariances r_0 .. r_p.
  std::vector<double> r(p + 1, 0.0);
  for (std::size_t lag = 0; lag <= p; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
    }
    r[lag] = acc / static_cast<double>(n);
  }

  // Levinson-Durbin recursion.
  std::vector<double> a(p + 1, 0.0);
  std::vector<double> prev(p + 1, 0.0);
  double e = r[0];
  for (std::size_t k = 1; k <= p; ++k) {
    double acc = r[k];
    for (std::size_t j = 1; j < k; ++j) acc -= prev[j] * r[k - j];
    const double kappa = e > 0.0 ? acc / e : 0.0;
    a = prev;
    a[k] = kappa;
    for (std::size_t j = 1; j < k; ++j) a[j] = prev[j] - kappa * prev[k - j];
    e *= (1.0 - kappa * kappa);
    if (e < 1e-300) e = 1e-300;
    prev = a;
  }

  m.coeffs.assign(a.begin() + 1, a.end());
  m.noise_variance = e;
  m.aic = static_cast<double>(n) * std::log(e) + 2.0 * static_cast<double>(p);
  return m;
}

ArModel fit_ar_aic(std::span<const double> xs, std::size_t max_order) {
  ArModel best;
  bool have = false;
  for (std::size_t p = 1; p <= max_order; ++p) {
    if (xs.size() <= p + 1) break;
    ArModel m = fit_ar(xs, p);
    if (m.order() != p && m.noise_variance != 0.0) continue;
    if (!have || m.aic < best.aic) {
      best = std::move(m);
      have = true;
    }
  }
  return best;
}

OnlineArPredictor::OnlineArPredictor(std::size_t window,
                                     std::size_t refit_every,
                                     std::size_t max_order)
    : window_(window), refit_every_(refit_every), max_order_(max_order) {}

void OnlineArPredictor::observe(double x) {
  history_.push_back(x);
  running_sum_ += x;
  ++total_;
  ++since_fit_;
  if (history_.size() > 2 * window_) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(window_));
  }
  const std::size_t min_fit = std::max<std::size_t>(4 * max_order_, 32);
  if (history_.size() >= min_fit &&
      (since_fit_ >= refit_every_ || model_.order() == 0)) {
    const std::size_t take = std::min(history_.size(), window_);
    std::span<const double> tail(history_.data() + history_.size() - take,
                                 take);
    ArModel m = fit_ar_aic(tail, max_order_);
    if (m.order() > 0 || m.noise_variance == 0.0) {
      model_ = std::move(m);
      since_fit_ = 0;
    }
  }
}

double OnlineArPredictor::predict() const {
  if (model_.order() > 0 && history_.size() >= model_.order()) {
    const double f = model_.forecast(history_);
    return f > 0.0 ? f : 0.0;
  }
  return total_ > 0 ? running_sum_ / static_cast<double>(total_) : 0.0;
}

}  // namespace pscrub::stats
