// Segmented on-disk read cache.
//
// Real drive caches keep a handful of variable-length segments of
// recently-read (and read-ahead) data and recycle the least recently used
// segment under pressure. We model exactly that: contiguous LBN ranges with
// LRU eviction at segment granularity.
#pragma once

#include <cstdint>
#include <list>

#include "disk/command.h"

namespace pscrub::disk {

class SegmentCache {
 public:
  explicit SegmentCache(std::int64_t capacity_bytes)
      : capacity_sectors_(capacity_bytes / kSectorBytes) {}

  /// True iff [lbn, lbn+sectors) is fully contained in one cached segment.
  /// A hit refreshes the segment's recency.
  bool lookup(Lbn lbn, std::int64_t sectors);

  /// Inserts [lbn, lbn+sectors), merging with overlapping or adjacent
  /// segments, then evicts LRU segments until within capacity.
  void insert(Lbn lbn, std::int64_t sectors);

  /// Drops all contents (e.g. cache disabled at runtime).
  void clear() { segments_.clear(); used_sectors_ = 0; }

  std::int64_t used_bytes() const { return used_sectors_ * kSectorBytes; }
  std::size_t segment_count() const { return segments_.size(); }

 private:
  struct Segment {
    Lbn lbn;
    std::int64_t sectors;
  };

  // Front = most recently used.
  std::list<Segment> segments_;
  std::int64_t capacity_sectors_;
  std::int64_t used_sectors_ = 0;
};

}  // namespace pscrub::disk
