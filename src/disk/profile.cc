#include "disk/profile.h"

#include <algorithm>
#include <cmath>

namespace pscrub::disk {

const char* to_string(Interface i) {
  switch (i) {
    case Interface::kSata: return "SATA";
    case Interface::kSas: return "SAS";
    case Interface::kScsi: return "SCSI";
  }
  return "?";
}

SimTime DiskProfile::seek_time(std::int64_t cylinders,
                               std::int64_t total_cylinders) const {
  if (cylinders <= 0) return 0;
  if (cylinders == 1) return track_switch;
  const double frac = std::min(
      1.0, static_cast<double>(cylinders) / static_cast<double>(total_cylinders));
  return min_seek +
         static_cast<SimTime>(std::llround(
             static_cast<double>(max_seek - min_seek) * std::sqrt(frac)));
}

SimTime DiskProfile::media_transfer(std::int64_t sectors) const {
  const double spt = mean_spt();
  const double revolutions = static_cast<double>(sectors) / spt;
  SimTime t = static_cast<SimTime>(revolutions *
                                   static_cast<double>(rotation_period()));
  // Track switches: one per full track crossed. Track skew hides the
  // rotational component, so only the switch itself is charged.
  const auto crossings = static_cast<std::int64_t>(revolutions);
  return t + crossings * track_switch;
}

SimTime DiskProfile::bus_transfer(std::int64_t bytes) const {
  return static_cast<SimTime>(static_cast<double>(bytes) /
                              (bus_mb_per_s * 1e6) * kSecond);
}

SimTime DiskProfile::sequential_verify_service(std::int64_t bytes,
                                               CommandKind kind) const {
  if (kind == CommandKind::kVerifyAta && cache_enabled) {
    // The Fig 1 pathology: answered from cache/electronics, no media access.
    return command_overhead + ata_verify_cache_base +
           static_cast<SimTime>(ata_verify_cache_ns_per_byte *
                                static_cast<double>(bytes)) +
           completion_overhead;
  }
  const SimTime p = rotation_period();
  // Rotational positioning cost per command. With deterministic phase the
  // head just missed the next sector during turnaround and waits almost a
  // full revolution; firmware with arbitrary re-acquire phase averages half.
  const SimTime turnaround = completion_overhead + command_overhead;
  SimTime rot;
  if (verify_random_phase) {
    rot = p / 2;
  } else {
    rot = p - (turnaround % p);
  }
  return command_overhead + rot + media_transfer(sectors_from_bytes(bytes)) +
         completion_overhead;
}

SimTime DiskProfile::staggered_verify_service(std::int64_t bytes,
                                              int regions) const {
  const SimTime p = rotation_period();
  // Jump between consecutive regions: 1/regions of the full stroke.
  // Geometry cylinder count is irrelevant at this resolution; use a
  // nominal 50k-cylinder stroke for the fraction.
  const std::int64_t total_cyl = 50'000;
  const std::int64_t dist = std::max<std::int64_t>(1, total_cyl / regions);
  // After an unrelated seek the request's rotational phase is uniform:
  // half a rotation on average.
  return command_overhead + seek_time(dist, total_cyl) + p / 2 +
         media_transfer(sectors_from_bytes(bytes)) + completion_overhead;
}

SimTime DiskProfile::random_read_service(std::int64_t bytes) const {
  const std::int64_t total_cyl = 50'000;
  // Mean random seek spans 1/3 of the stroke.
  return command_overhead + seek_time(total_cyl / 3, total_cyl) +
         rotation_period() / 2 + media_transfer(sectors_from_bytes(bytes)) +
         bus_transfer(bytes) + completion_overhead;
}

SimTime DiskProfile::sequential_read_service(std::int64_t bytes) const {
  const SimTime p = rotation_period();
  const SimTime turnaround = completion_overhead + command_overhead;
  const SimTime rot = p - (turnaround % p);
  return command_overhead + rot + media_transfer(sectors_from_bytes(bytes)) +
         bus_transfer(bytes) + completion_overhead;
}

double DiskProfile::media_rate_mb_s() const {
  const double bytes_per_rev = mean_spt() * kSectorBytes;
  return bytes_per_rev / to_seconds(rotation_period()) / 1e6;
}

// ---- Catalog ---------------------------------------------------------------
//
// Calibration notes: targets are the paper's measured service times --
//   Fig 1: Caviar verify (cache off) ~8.3 ms, Deskstar ~4.0 ms, flat <=64 KB;
//          cache-on ATA verify 0.296 ms (1K) .. 0.525 ms (64K).
//   Fig 4: SCSI VERIFY flat <=64 KB (Ultrastar ~4.5 ms, MAX ~7 ms,
//          MAP ~8.8 ms), growing with transfer above.
//   Fig 5: sequential scrub at 64 KB: Ultrastar ~12 MB/s, MAX ~8.8 MB/s;
//          staggered overtakes sequential at >=128 regions.

DiskProfile hitachi_ultrastar_15k450() {
  DiskProfile p;
  p.name = "Hitachi Ultrastar 15K450";
  p.interface = Interface::kSas;
  p.capacity_bytes = 300LL * 1000 * 1000 * 1000;
  p.rpm = 15000;
  p.outer_spt = 1900;
  p.inner_spt = 1050;
  p.min_seek = from_seconds(0.7e-3);
  p.max_seek = from_seconds(6.5e-3);
  p.track_switch = from_seconds(0.5e-3);
  p.command_overhead = from_seconds(0.12e-3);
  p.completion_overhead = from_seconds(0.12e-3);
  p.cache_bytes = 16LL << 20;
  p.cache_hit_overhead = from_seconds(0.10e-3);
  p.bus_mb_per_s = 300.0;
  return p;
}

DiskProfile fujitsu_max3073rc() {
  DiskProfile p;
  p.name = "Fujitsu MAX3073RC";
  p.interface = Interface::kSas;
  p.capacity_bytes = 73LL * 1000 * 1000 * 1000;
  p.rpm = 15000;
  p.outer_spt = 1250;
  p.inner_spt = 750;
  p.min_seek = from_seconds(0.8e-3);
  p.max_seek = from_seconds(7.0e-3);
  p.track_switch = from_seconds(0.6e-3);
  // Older controller: noticeably larger per-command electronics cost.
  // The 4.1 ms turnaround pushes a back-to-back sequential verify past one
  // revolution (service ~8.4 ms -> ~7.8 MB/s at 64 KB, Fig 5's level), and
  // is what lets the staggered scrubber overtake it at many regions.
  p.command_overhead = from_seconds(2.05e-3);
  p.completion_overhead = from_seconds(2.05e-3);
  p.cache_bytes = 8LL << 20;
  p.cache_hit_overhead = from_seconds(0.15e-3);
  p.bus_mb_per_s = 300.0;
  return p;
}

DiskProfile fujitsu_map3367np() {
  DiskProfile p;
  p.name = "Fujitsu MAP3367NP";
  p.interface = Interface::kScsi;
  p.capacity_bytes = 36LL * 1000 * 1000 * 1000;
  p.rpm = 10000;
  p.outer_spt = 1800;
  p.inner_spt = 1200;
  p.min_seek = from_seconds(1.0e-3);
  p.max_seek = from_seconds(9.0e-3);
  p.track_switch = from_seconds(0.8e-3);
  p.command_overhead = from_seconds(2.9e-3);
  p.completion_overhead = from_seconds(2.9e-3);
  // Old parallel-SCSI firmware re-acquires the track at an arbitrary
  // rotational phase per command: mean service = overheads + P/2 ~ 8.8 ms,
  // matching Fig 4's flat region for this drive.
  p.verify_random_phase = true;
  p.cache_bytes = 8LL << 20;
  p.cache_hit_overhead = from_seconds(0.2e-3);
  p.bus_mb_per_s = 160.0;
  return p;
}

DiskProfile wd_caviar() {
  DiskProfile p;
  p.name = "WD Caviar";
  p.interface = Interface::kSata;
  p.capacity_bytes = 320LL * 1000 * 1000 * 1000;
  p.rpm = 7200;
  p.outer_spt = 1700;
  p.inner_spt = 900;
  p.min_seek = from_seconds(1.2e-3);
  p.max_seek = from_seconds(13.0e-3);
  p.track_switch = from_seconds(1.0e-3);
  p.command_overhead = from_seconds(0.10e-3);
  p.completion_overhead = from_seconds(0.10e-3);
  p.cache_bytes = 16LL << 20;
  p.cache_hit_overhead = from_seconds(0.12e-3);
  p.bus_mb_per_s = 150.0;
  p.ata_verify_cache_base = from_seconds(0.09e-3);
  p.ata_verify_cache_ns_per_byte = 3.5;  // ~0.23 ms across 64 KB
  p.verify_random_phase = false;  // deterministic just-miss: ~full rotation
  return p;
}

DiskProfile hitachi_deskstar() {
  DiskProfile p;
  p.name = "Hitachi Deskstar";
  p.interface = Interface::kSata;
  p.capacity_bytes = 500LL * 1000 * 1000 * 1000;
  p.rpm = 7200;
  p.outer_spt = 1800;
  p.inner_spt = 950;
  p.min_seek = from_seconds(1.1e-3);
  p.max_seek = from_seconds(12.5e-3);
  p.track_switch = from_seconds(0.9e-3);
  p.command_overhead = from_seconds(0.10e-3);
  p.completion_overhead = from_seconds(0.10e-3);
  p.cache_bytes = 16LL << 20;
  p.cache_hit_overhead = from_seconds(0.12e-3);
  p.bus_mb_per_s = 150.0;
  p.ata_verify_cache_base = from_seconds(0.09e-3);
  p.ata_verify_cache_ns_per_byte = 3.5;
  p.verify_random_phase = true;  // re-acquires phase: ~half rotation mean
  return p;
}

}  // namespace pscrub::disk
