// Disk command abstraction shared by the block layer and the disk model.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace pscrub::disk {

/// Logical block number, in 512-byte sectors.
using Lbn = std::int64_t;

inline constexpr std::int64_t kSectorBytes = 512;

constexpr std::int64_t sectors_from_bytes(std::int64_t bytes) {
  return (bytes + kSectorBytes - 1) / kSectorBytes;
}

enum class CommandKind : std::uint8_t {
  kRead,
  kWrite,
  /// SCSI VERIFY: checks sectors against the medium. Transfers no data to
  /// the host, never consults or populates the on-disk cache.
  kVerifyScsi,
  /// ATA VERIFY as actually implemented by the SATA drives the paper
  /// measured (Fig 1): with the on-disk cache enabled the command is
  /// answered from cache/electronics without touching the medium; with the
  /// cache disabled it behaves like a media-bound verify.
  kVerifyAta,
};

constexpr bool is_verify(CommandKind k) {
  return k == CommandKind::kVerifyScsi || k == CommandKind::kVerifyAta;
}

constexpr const char* to_string(CommandKind k) {
  switch (k) {
    case CommandKind::kRead: return "read";
    case CommandKind::kWrite: return "write";
    case CommandKind::kVerifyScsi: return "verify (scsi)";
    case CommandKind::kVerifyAta: return "verify (ata)";
  }
  return "?";
}

struct DiskCommand {
  CommandKind kind = CommandKind::kRead;
  Lbn lbn = 0;
  std::int64_t sectors = 0;
  /// RAID reconstruction traffic (degraded-mode peer reads and the
  /// rebuilt-data writes). Purely observational -- service time is
  /// unaffected -- so utilization timelines can attribute the work.
  bool rebuild = false;

  std::int64_t bytes() const { return sectors * kSectorBytes; }
};

/// Typed completion status shared by the disk model and the block layer.
/// kTimeout is host-side only: a drive never reports it, the block layer
/// synthesizes it when a request outlives its deadline.
enum class IoStatus : std::uint8_t {
  kOk,
  /// Unrecovered media error: the command touched a latent sector error
  /// and the drive's internal retries did not recover it.
  kMediaError,
  /// Recoverable device error (vibration, marginal head position): the
  /// command failed, but a host retry of the same command may succeed.
  kTransientError,
  /// The whole device is gone; every command fails fast.
  kDiskFailed,
  /// Host-side request timeout (block layer only).
  kTimeout,
};

constexpr bool is_error(IoStatus s) { return s != IoStatus::kOk; }

constexpr const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kMediaError: return "media-error";
    case IoStatus::kTransientError: return "transient-error";
    case IoStatus::kDiskFailed: return "disk-failed";
    case IoStatus::kTimeout: return "timeout";
  }
  return "?";
}

}  // namespace pscrub::disk
