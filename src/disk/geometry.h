// Zoned disk geometry: maps logical block numbers to physical position.
//
// Modern disks record more sectors on outer tracks (zoned bit recording).
// We model a configurable number of zones whose sectors-per-track
// interpolate linearly from `outer_spt` to `inner_spt`. Within a zone,
// LBNs advance along a track, then to the next track of the cylinder
// (same angular position: cylinder switch needs only a head switch), then
// to the next cylinder.
//
// The model collapses platters/heads into "one track per cylinder" with the
// full per-cylinder capacity; this preserves the two quantities every
// experiment depends on — angular position of a sector and seek distance in
// cylinders — while avoiding irrelevant head-count bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/command.h"

namespace pscrub::disk {

struct PhysicalPos {
  std::int64_t cylinder = 0;
  /// Angular position of the sector start, as a fraction of a revolution
  /// in [0, 1).
  double angle = 0.0;
  /// Sectors per track at this cylinder.
  std::int64_t spt = 0;
};

class Geometry {
 public:
  /// Builds a geometry covering at least `capacity_bytes`, with `zones`
  /// zones interpolating from `outer_spt` (zone 0, LBN 0) to `inner_spt`.
  Geometry(std::int64_t capacity_bytes, std::int64_t outer_spt,
           std::int64_t inner_spt, int zones = 16);

  std::int64_t total_sectors() const { return total_sectors_; }
  std::int64_t total_bytes() const { return total_sectors_ * kSectorBytes; }
  std::int64_t cylinders() const { return total_cylinders_; }

  /// Maps an LBN to its physical position. Precondition: valid LBN.
  PhysicalPos locate(Lbn lbn) const;

  /// Sectors per track at the cylinder containing `lbn`.
  std::int64_t sectors_per_track(Lbn lbn) const { return locate(lbn).spt; }

  /// Average sectors per track across the whole disk (capacity-weighted).
  double mean_sectors_per_track() const;

  bool valid(Lbn lbn, std::int64_t sectors) const {
    return lbn >= 0 && sectors > 0 && lbn + sectors <= total_sectors_;
  }

 private:
  struct Zone {
    Lbn first_lbn;            // first LBN of the zone
    std::int64_t first_cyl;   // first cylinder of the zone
    std::int64_t cylinders;   // cylinders in this zone
    std::int64_t spt;         // sectors per track throughout the zone
  };

  std::vector<Zone> zones_;
  std::int64_t total_sectors_ = 0;
  std::int64_t total_cylinders_ = 0;
};

}  // namespace pscrub::disk
