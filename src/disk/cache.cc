#include "disk/cache.h"

#include <algorithm>

namespace pscrub::disk {

bool SegmentCache::lookup(Lbn lbn, std::int64_t sectors) {
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (lbn >= it->lbn && lbn + sectors <= it->lbn + it->sectors) {
      segments_.splice(segments_.begin(), segments_, it);  // touch
      return true;
    }
  }
  return false;
}

void SegmentCache::insert(Lbn lbn, std::int64_t sectors) {
  if (sectors <= 0 || capacity_sectors_ <= 0) return;
  Lbn lo = lbn;
  Lbn hi = lbn + sectors;
  // Absorb every overlapping or adjacent segment into [lo, hi).
  for (auto it = segments_.begin(); it != segments_.end();) {
    const Lbn s_lo = it->lbn;
    const Lbn s_hi = it->lbn + it->sectors;
    if (s_hi >= lo && s_lo <= hi) {
      lo = std::min(lo, s_lo);
      hi = std::max(hi, s_hi);
      used_sectors_ -= it->sectors;
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  segments_.push_front(Segment{lo, hi - lo});
  used_sectors_ += hi - lo;
  while (used_sectors_ > capacity_sectors_ && !segments_.empty()) {
    // Evict least recently used whole segments; if a single segment exceeds
    // capacity, trim its tail instead of thrashing.
    if (segments_.size() == 1) {
      Segment& s = segments_.front();
      const std::int64_t excess = used_sectors_ - capacity_sectors_;
      s.sectors -= excess;
      s.lbn += excess;  // keep the most recent (highest) part of the range
      used_sectors_ = capacity_sectors_;
      break;
    }
    used_sectors_ -= segments_.back().sectors;
    segments_.pop_back();
  }
}

}  // namespace pscrub::disk
