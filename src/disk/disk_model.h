// Event-driven mechanical disk model.
//
// The model tracks head cylinder and derives rotational phase from the
// simulation clock (the platter never stops), so back-to-back command
// sequences experience the real positioning costs: a sequential VERIFY
// stream just-misses its next sector during the command turnaround and
// pays ~a full revolution (Sec IV-A of the paper), while jumps between
// staggered regions pay a short seek plus half a revolution on average.
//
// The disk services one command at a time; commands submitted while busy
// queue FIFO inside the drive (the block layer above decides ordering, so
// the internal queue is typically depth 0-1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "disk/cache.h"
#include "disk/command.h"
#include "disk/geometry.h"
#include "disk/profile.h"
#include "obs/timeline.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::disk {

/// Per-command outcome delivered at completion time. Implicitly converts
/// to/from SimTime (the latency) so legacy callbacks that only care about
/// response time keep working; error-aware consumers read `status`.
struct DiskResult {
  SimTime latency = 0;
  IoStatus status = IoStatus::kOk;
  /// First bad sector the command tripped over (media errors only).
  Lbn error_lbn = -1;
  /// In-drive recovery attempts spent on this command (error paths only).
  std::int64_t internal_retries = 0;

  DiskResult() = default;
  DiskResult(SimTime l) : latency(l) {}       // NOLINT(google-explicit-constructor)
  operator SimTime() const { return latency; }  // NOLINT(google-explicit-constructor)
  bool ok() const { return status == IoStatus::kOk; }
};

/// Completion callback: invoked at completion time with the command's
/// result (latency = completion - submission, plus the typed status).
using CompletionFn = std::function<void(const DiskCommand&, const DiskResult&)>;

/// In-drive error-recovery behaviour. The defaults model nothing: errors
/// stay out-of-band (legacy observer-only reporting). Fault-injection
/// scenarios switch `in_band` on, at which point commands touching bad
/// sectors *fail* with kMediaError after a realistic retry-amplified
/// recovery time: desktop drives grind through internal retries for
/// seconds, enterprise drives cap the effort via ERC/TLER.
struct DiskErrorModel {
  /// Report media errors in-band (fail the command) instead of the legacy
  /// silent-success + observer path.
  bool in_band = false;
  /// One internal retry: reposition, wait a revolution, re-read.
  SimTime retry_interval = 50 * kMillisecond;
  /// Total per-sector recovery budget of a desktop drive (no ERC): the
  /// multi-second retry grind the paper's SATA drives exhibit.
  SimTime desktop_recovery = 3 * kSecond;
  /// ERC/TLER: when > 0, caps the whole command's recovery effort so the
  /// host (RAID layer) can take over quickly.
  SimTime erc_timeout = 0;
  /// Probability a media-bound read/verify hits a transient error
  /// (recoverable on a host retry). Drawn from the disk's seeded RNG.
  double transient_error_prob = 0.0;
  /// Recovery time burned before a transient error is reported.
  SimTime transient_recovery = 200 * kMillisecond;
};

struct DiskCounters {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t verifies = 0;
  std::int64_t read_bytes = 0;
  std::int64_t write_bytes = 0;
  std::int64_t verified_bytes = 0;
  std::int64_t cache_hits = 0;
  std::int64_t media_accesses = 0;
  std::int64_t lse_detected = 0;  // latent errors hit by media accesses
  std::int64_t lse_repaired = 0;  // cleared by rewrites (remap-on-write)
  std::int64_t media_errors = 0;      // commands failed with kMediaError
  std::int64_t transient_errors = 0;  // commands failed with kTransientError
  std::int64_t failed_commands = 0;   // commands failed with kDiskFailed
  std::int64_t internal_retries = 0;  // in-drive recovery attempts
  SimTime recovery_time = 0;          // time burned in in-drive recovery
  SimTime busy_time = 0;

  /// Publishes every counter into `registry` under `prefix` (e.g.
  /// "disk.reads").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

/// Where one command's service time went (filled by every service
/// computation; the tracer turns it into seek/rotate/transfer phase
/// slices under the command's span).
struct ServicePhases {
  SimTime seek = 0;
  SimTime rotation = 0;
  /// Media transfer incl. track switches (plus bus transfer for
  /// READ/WRITE).
  SimTime transfer = 0;
  /// In-drive error-recovery time (retry grind on bad sectors, transient
  /// recovery, legacy read penalty) -- the slice utilization timelines
  /// attribute to "retry" rather than the command's own category.
  SimTime recovery = 0;
  bool cache_hit = false;
};

class DiskModel {
 public:
  DiskModel(Simulator& sim, DiskProfile profile, std::uint64_t seed);

  /// Submits a command. Completion is delivered through the simulator.
  void submit(const DiskCommand& cmd, CompletionFn on_complete);

  /// True while a command is in service (not merely queued).
  bool busy() const { return busy_; }

  /// Completion time of the in-service command (undefined when idle).
  SimTime busy_until() const { return busy_until_; }

  /// Queued-but-not-started commands inside the drive.
  std::size_t queued() const { return queue_.size(); }

  const DiskProfile& profile() const { return profile_; }
  const Geometry& geometry() const { return geometry_; }
  const DiskCounters& counters() const { return counters_; }

  /// Toggles the on-disk cache at runtime (Fig 1's cache on/off sweep).
  void set_cache_enabled(bool enabled);

  /// Attaches a utilization timeline: every serviced command adds its busy
  /// seconds to `<prefix>.util.{foreground,scrub,rebuild,retry}` (series
  /// created lazily on first use). Pass a default-constructed sink to
  /// detach.
  void set_timeline(const obs::TimelineSink& sink);

  std::int64_t total_sectors() const { return geometry_.total_sectors(); }

  // ---- Latent sector error injection ------------------------------------
  //
  // LSEs are silent: an injected error costs nothing until a media access
  // touches the sector. A READ of a bad sector pays an error-recovery
  // penalty (the drive's retry loop) and reports the sector through the
  // observer; a VERIFY detects it (that is a scrubber's whole purpose);
  // a WRITE covering the sector repairs it (sector reallocation).

  /// Marks a sector as a latent error. Idempotent.
  void inject_lse(Lbn lbn);

  /// Explicitly repairs a sector (e.g. after RAID reconstruction wrote it).
  void repair_lse(Lbn lbn);

  /// Drops every injected error without counting repairs (the drive was
  /// physically replaced).
  void clear_lses() { lse_.clear(); }

  bool has_lse(Lbn lbn) const { return lse_.count(lbn) != 0; }
  std::size_t lse_count() const { return lse_.size(); }

  /// Observer invoked (at command completion time) once per bad sector a
  /// media access touched. `is_read` distinguishes a foreground read
  /// failure from a scrubber detection. Returns the previously installed
  /// observer so layered consumers (fault injector over RAID repair) can
  /// chain rather than clobber.
  using LseObserver = std::function<void(Lbn lbn, bool is_read)>;
  LseObserver set_lse_observer(LseObserver fn) {
    LseObserver prev = std::move(lse_observer_);
    lse_observer_ = std::move(fn);
    return prev;
  }

  /// Per-bad-sector error-recovery time added to a READ touching it
  /// (legacy out-of-band mode only; in-band mode uses the error model).
  void set_lse_read_penalty(SimTime penalty) { lse_read_penalty_ = penalty; }

  // ---- In-band error model ----------------------------------------------

  /// Installs the in-drive error-recovery model (see DiskErrorModel).
  void set_error_model(const DiskErrorModel& model) { errors_ = model; }
  const DiskErrorModel& error_model() const { return errors_; }

  /// Kills the whole device: every subsequent command completes fast with
  /// kDiskFailed (electronics answer, nothing mechanical happens). The
  /// command in service, if any, still completes normally.
  void fail_device() { device_failed_ = true; }
  bool device_failed() const { return device_failed_; }

  /// Installs a replacement drive in the same slot: clears the failure
  /// flag. Callers also want clear_lses() -- fresh platters have no latent
  /// errors -- but the two are separate so a transient controller failure
  /// can be modeled too.
  void replace_device() { device_failed_ = false; }

  // ---- Power management ---------------------------------------------------
  //
  // Three states: kActive while a command is in service, kIdle while
  // spinning without work, kStandby after spin_down(). A command arriving
  // in standby pays the spin-up time before service. Energy integrates
  // continuously (query it at any simulation time).

  enum class PowerState : std::uint8_t { kActive, kIdle, kStandby };

  PowerState power_state() const;

  /// Spins the platters down. Only meaningful while idle; a busy or
  /// already-standby disk ignores the request (returns false).
  bool spin_down();

  /// Total energy consumed up to now, in joules.
  double energy_joules() const;

  /// Number of spin-ups triggered by commands arriving in standby.
  std::int64_t spinups() const { return spinups_; }

  /// Total command time spent waiting for spin-ups (latency cost of the
  /// power policy).
  SimTime spinup_wait() const { return spinup_wait_; }

 private:
  struct Pending {
    DiskCommand cmd;
    CompletionFn on_complete;
    SimTime submitted;
  };

  void start(Pending p);
  /// Persistent-completion handler: delivers the in-service command's
  /// result and hands the next queued command to the mechanism.
  void complete_in_service();
  /// Timeline hook: attributes [t0, t1) busy time to the command's
  /// category, splitting off `recovery` into the retry series.
  void record_timeline_busy(const DiskCommand& cmd, SimTime t0, SimTime t1,
                            SimTime recovery);
  /// Computes service duration from the current mechanical state and
  /// advances that state to the command's end position.
  SimTime service(const DiskCommand& cmd);
  /// Rotational phase (fraction of a revolution) at absolute time `t`.
  double phase_at(SimTime t) const;

  Simulator& sim_;
  DiskProfile profile_;
  Geometry geometry_;
  SegmentCache cache_;
  Rng rng_;
  /// Phase breakdown of the most recent service() computation.
  ServicePhases phases_;
  /// Status/error outcome of the most recent service() computation
  /// (latency is filled at completion time).
  DiskResult result_;
  DiskErrorModel errors_;
  bool device_failed_ = false;

  bool busy_ = false;
  SimTime busy_until_ = 0;
  std::int64_t head_cylinder_ = 0;
  std::deque<Pending> queue_;
  // One persistent completion event serves every command: the drive
  // executes one command at a time, so completion state lives in these
  // members instead of a freshly allocated callback per I/O. Re-arming the
  // event is allocation-free (see EventQueue::arm).
  EventId completion_event_ = 0;
  Pending in_service_;
  DiskResult in_service_outcome_;
  std::vector<Lbn> in_service_hits_;
  bool in_service_failed_ = false;  // device-failed fast completion
  DiskCounters counters_;
  obs::TimelineSink timeline_;
  // Lazily resolved series ids, valid while timeline_ points at the same
  // timeline (set_timeline resets them).
  bool timeline_ready_ = false;
  obs::Timeline::SeriesId tl_fg_ = 0;
  obs::Timeline::SeriesId tl_scrub_ = 0;
  obs::Timeline::SeriesId tl_rebuild_ = 0;
  obs::Timeline::SeriesId tl_retry_ = 0;
  std::set<Lbn> lse_;
  LseObserver lse_observer_;
  SimTime lse_read_penalty_ = 0;
  /// Bad sectors touched by the command being started (filled by
  /// service(), delivered to the observer at completion).
  std::vector<Lbn> media_lse_hits_;

  // Power accounting: energy is integrated lazily -- `energy_` is exact as
  // of `energy_updated_at_` in state `power_`; accrue() rolls it forward.
  void accrue_energy() const;
  double state_watts(PowerState s) const;
  mutable double energy_ = 0.0;
  mutable SimTime energy_updated_at_ = 0;
  PowerState power_ = PowerState::kIdle;
  SimTime spinup_until_ = 0;  // while > now, the drive is spinning up
  std::int64_t spinups_ = 0;
  SimTime spinup_wait_ = 0;
};

}  // namespace pscrub::disk
