#include "disk/geometry.h"

#include <cassert>
#include <cmath>

namespace pscrub::disk {

Geometry::Geometry(std::int64_t capacity_bytes, std::int64_t outer_spt,
                   std::int64_t inner_spt, int zones) {
  assert(capacity_bytes > 0);
  assert(outer_spt >= inner_spt && inner_spt > 0);
  assert(zones >= 1);

  const std::int64_t want_sectors = sectors_from_bytes(capacity_bytes);
  // Average spt over the zone ramp; derive the cylinder count that covers
  // the requested capacity, then distribute cylinders evenly across zones.
  const double mean_spt =
      (static_cast<double>(outer_spt) + static_cast<double>(inner_spt)) / 2.0;
  std::int64_t cyl_total = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(want_sectors) / mean_spt));
  if (cyl_total < zones) cyl_total = zones;

  Lbn lbn = 0;
  std::int64_t cyl = 0;
  for (int z = 0; z < zones; ++z) {
    Zone zone;
    zone.first_lbn = lbn;
    zone.first_cyl = cyl;
    zone.cylinders = cyl_total / zones + (z < cyl_total % zones ? 1 : 0);
    // Linear interpolation outer -> inner across zones.
    const double f = zones == 1 ? 0.0 : static_cast<double>(z) / (zones - 1);
    zone.spt = outer_spt -
               static_cast<std::int64_t>(std::llround(
                   f * static_cast<double>(outer_spt - inner_spt)));
    zones_.push_back(zone);
    lbn += zone.cylinders * zone.spt;
    cyl += zone.cylinders;
  }
  total_sectors_ = lbn;
  total_cylinders_ = cyl;
  assert(total_sectors_ >= want_sectors);
}

PhysicalPos Geometry::locate(Lbn lbn) const {
  assert(lbn >= 0 && lbn < total_sectors_);
  // Zones are few (<= ~16); a linear scan is cache-friendly and fast enough
  // for the hot path (the compiler unrolls it well).
  for (const Zone& z : zones_) {
    const std::int64_t zone_sectors = z.cylinders * z.spt;
    if (lbn < z.first_lbn + zone_sectors) {
      const std::int64_t off = lbn - z.first_lbn;
      PhysicalPos pos;
      pos.cylinder = z.first_cyl + off / z.spt;
      pos.spt = z.spt;
      pos.angle = static_cast<double>(off % z.spt) / static_cast<double>(z.spt);
      return pos;
    }
  }
  assert(false && "unreachable: lbn within total_sectors_");
  return {};
}

double Geometry::mean_sectors_per_track() const {
  double weighted = 0.0;
  for (const Zone& z : zones_) {
    weighted +=
        static_cast<double>(z.cylinders * z.spt) * static_cast<double>(z.spt);
  }
  return weighted / static_cast<double>(total_sectors_);
}

}  // namespace pscrub::disk
