// Drive model parameters ("profiles") and closed-form service estimates.
//
// One profile per drive model the paper measured. The numbers are
// calibrated so that the closed-form estimates land near the paper's
// figures (Figs 1, 4, 5); the event-driven DiskModel consumes the same
// parameters, and a test asserts the two agree.
#pragma once

#include <cstdint>
#include <string>

#include "disk/command.h"
#include "sim/time.h"

namespace pscrub::disk {

enum class Interface : std::uint8_t { kSata, kSas, kScsi };

const char* to_string(Interface i);

struct DiskProfile {
  std::string name;
  Interface interface = Interface::kSas;

  std::int64_t capacity_bytes = 0;
  int rpm = 15000;
  std::int64_t outer_spt = 0;  // sectors per track, outermost zone
  std::int64_t inner_spt = 0;  // sectors per track, innermost zone
  int zones = 16;

  // Seek curve anchors: t(d) = min + (max - min) * sqrt(d / d_max) for a
  // d-cylinder sweep; single-track (d <= 1) costs `track_switch`.
  SimTime min_seek = 0;
  SimTime max_seek = 0;
  SimTime track_switch = 0;

  // Fixed electronics costs per command: host->disk command processing and
  // completion propagation back to the host. Their sum is the "turnaround
  // gap" during which the platter keeps spinning -- the mechanism behind
  // the full-rotation miss of back-to-back sequential VERIFYs (Sec IV-A).
  SimTime command_overhead = 0;
  SimTime completion_overhead = 0;

  // On-disk cache.
  bool cache_enabled = true;
  std::int64_t cache_bytes = 8LL << 20;
  std::int64_t prefetch_bytes = 0;  // read-ahead inserted after a media read
  SimTime cache_hit_overhead = 0;   // electronics cost of a full cache hit
  double bus_mb_per_s = 300.0;      // host transfer rate (reads/writes only)

  // ATA VERIFY-from-cache behaviour (Fig 1): with the cache enabled the
  // command never touches the medium and costs base + size * per_byte.
  SimTime ata_verify_cache_base = 0;
  double ata_verify_cache_ns_per_byte = 0.0;

  // Power model (for the idle-time spin-down application the paper's
  // conclusion proposes). Typical 15k 3.5" enterprise figures.
  double active_watts = 17.0;   // seeking / transferring
  double idle_watts = 10.0;     // spinning, no command
  double standby_watts = 2.0;   // spun down
  SimTime spinup_time = 8 * kSecond;
  double spinup_watts = 24.0;   // surge while spinning up

  // Firmware trait: drives that re-acquire the track with an arbitrary
  // rotational phase on each verify (observed on the Deskstar: ~P/2 mean
  // latency) versus drives that deterministically just-miss the next
  // sector (~P, observed on the Caviar).
  bool verify_random_phase = false;

  // ---- Derived quantities -------------------------------------------------

  /// One platter revolution.
  SimTime rotation_period() const {
    return static_cast<SimTime>(60.0 * kSecond / rpm);
  }

  double mean_spt() const {
    return (static_cast<double>(outer_spt) + static_cast<double>(inner_spt)) /
           2.0;
  }

  /// Seek time for a sweep of `cylinders` (of `total_cylinders`).
  SimTime seek_time(std::int64_t cylinders, std::int64_t total_cylinders) const;

  /// Media transfer time for `sectors` at average density, including track
  /// switches.
  SimTime media_transfer(std::int64_t sectors) const;

  /// Host bus transfer time for `bytes` (zero for VERIFY).
  SimTime bus_transfer(std::int64_t bytes) const;

  // ---- Closed-form service estimates (used by the policy simulator) ------

  /// Back-to-back sequential VERIFY of `bytes` via the given command kind.
  /// Captures the turnaround-induced rotation miss.
  SimTime sequential_verify_service(std::int64_t bytes,
                                    CommandKind kind = CommandKind::kVerifyScsi) const;

  /// Staggered VERIFY of `bytes` jumping between `regions` regions:
  /// a 1/regions-stroke seek plus half a rotation on average.
  SimTime staggered_verify_service(std::int64_t bytes, int regions) const;

  /// Random read of `bytes` (average seek + half rotation + transfer).
  SimTime random_read_service(std::int64_t bytes) const;

  /// Synchronous sequential read of `bytes` with a cold cache
  /// (rotation-bound, like sequential verify but with bus transfer).
  SimTime sequential_read_service(std::int64_t bytes) const;

  /// Raw media streaming rate in MB/s at average density (upper bound on
  /// scrub throughput).
  double media_rate_mb_s() const;
};

// ---- Catalog of the paper's drives ----------------------------------------

/// Hitachi Ultrastar 15K450, 300 GB SAS, 15k RPM (the paper's main drive).
DiskProfile hitachi_ultrastar_15k450();

/// Fujitsu MAX3073RC, 73 GB SAS, 15k RPM.
DiskProfile fujitsu_max3073rc();

/// Fujitsu MAP3367NP, 36 GB parallel SCSI, 10k RPM.
DiskProfile fujitsu_map3367np();

/// Western Digital Caviar, 320 GB SATA, 7200 RPM. ATA VERIFY answered from
/// cache when the cache is on; deterministic just-miss phase when off.
DiskProfile wd_caviar();

/// Hitachi Deskstar, 500 GB SATA, 7200 RPM. ATA VERIFY answered from cache
/// when on; random rotational phase (mean half-rotation) when off.
DiskProfile hitachi_deskstar();

}  // namespace pscrub::disk
