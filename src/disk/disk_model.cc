#include "disk/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::disk {

void DiskCounters::export_to(obs::Registry& registry,
                             const std::string& prefix) const {
  registry.counter(prefix + ".reads") += reads;
  registry.counter(prefix + ".writes") += writes;
  registry.counter(prefix + ".verifies") += verifies;
  registry.counter(prefix + ".read_bytes") += read_bytes;
  registry.counter(prefix + ".write_bytes") += write_bytes;
  registry.counter(prefix + ".verified_bytes") += verified_bytes;
  registry.counter(prefix + ".cache_hits") += cache_hits;
  registry.counter(prefix + ".media_accesses") += media_accesses;
  registry.counter(prefix + ".lse_detected") += lse_detected;
  registry.counter(prefix + ".lse_repaired") += lse_repaired;
  registry.counter(prefix + ".media_errors") += media_errors;
  registry.counter(prefix + ".transient_errors") += transient_errors;
  registry.counter(prefix + ".failed_commands") += failed_commands;
  registry.counter(prefix + ".internal_retries") += internal_retries;
  registry.gauge(prefix + ".recovery_time_ms")
      .set(to_milliseconds(recovery_time));
  registry.gauge(prefix + ".busy_time_ms").set(to_milliseconds(busy_time));
}

DiskModel::DiskModel(Simulator& sim, DiskProfile profile, std::uint64_t seed)
    : sim_(sim),
      profile_(std::move(profile)),
      geometry_(profile_.capacity_bytes, profile_.outer_spt, profile_.inner_spt,
                profile_.zones),
      cache_(profile_.cache_bytes),
      rng_(seed) {
  completion_event_ = sim_.add_persistent([this] { complete_in_service(); });
}

void DiskModel::set_cache_enabled(bool enabled) {
  profile_.cache_enabled = enabled;
  if (!enabled) cache_.clear();
}

double DiskModel::phase_at(SimTime t) const {
  const SimTime p = profile_.rotation_period();
  return static_cast<double>(t % p) / static_cast<double>(p);
}

void DiskModel::submit(const DiskCommand& cmd, CompletionFn on_complete) {
  assert(geometry_.valid(cmd.lbn, cmd.sectors));
  Pending p{cmd, std::move(on_complete), sim_.now()};
  if (busy_) {
    queue_.push_back(std::move(p));
    return;
  }
  start(std::move(p));
}

void DiskModel::start(Pending p) {
  accrue_energy();
  if (device_failed_) {
    // Dead drive: the electronics (if anything) report failure without
    // moving the mechanism. Fast, mechanical state untouched.
    ++counters_.failed_commands;
    busy_ = true;
    busy_until_ =
        sim_.now() + profile_.command_overhead + profile_.completion_overhead;
    counters_.busy_time += busy_until_ - sim_.now();
    power_ = PowerState::kActive;
    if (timeline_.enabled()) {
      record_timeline_busy(p.cmd, sim_.now(), busy_until_, 0);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kDisk, "disk", "failed-device", sim_.now(),
                  busy_until_,
                  {{"lbn", p.cmd.lbn}, {"sectors", p.cmd.sectors}});
    }
    in_service_ = std::move(p);
    in_service_failed_ = true;
    sim_.arm(completion_event_, busy_until_);
    return;
  }
  SimTime spinup_extra = 0;
  if (power_ == PowerState::kStandby) {
    // The command wakes the drive: spin-up precedes service.
    ++spinups_;
    spinup_extra = profile_.spinup_time;
    spinup_until_ = sim_.now() + spinup_extra;
    spinup_wait_ += spinup_extra;
  }
  power_ = PowerState::kActive;
  busy_ = true;
  const SimTime duration = spinup_extra + service(p.cmd);
  busy_until_ = sim_.now() + duration;
  counters_.busy_time += duration;
  if (timeline_.enabled()) {
    record_timeline_busy(p.cmd, sim_.now(), busy_until_, phases_.recovery);
  }

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const SimTime t0 = sim_.now();
    if (p.submitted < t0) {
      // Time spent in the drive's internal FIFO behind earlier commands.
      tracer.span(obs::Track::kDisk, "disk", "drive-queue", p.submitted, t0);
    }
    tracer.span(obs::Track::kDisk, "disk", to_string(p.cmd.kind), t0,
                busy_until_,
                {{"lbn", p.cmd.lbn},
                 {"sectors", p.cmd.sectors},
                 {"cache_hit", phases_.cache_hit ? 1 : 0}});
    if (spinup_extra > 0) {
      tracer.span(obs::Track::kDisk, "disk", "spin-up", t0,
                  t0 + spinup_extra);
    }
    // Phase slices nest under the command span, laid out in service order
    // after the command overhead.
    SimTime cursor = t0 + spinup_extra + profile_.command_overhead;
    if (phases_.seek > 0) {
      tracer.span(obs::Track::kDisk, "disk", "seek", cursor,
                  cursor + phases_.seek);
      cursor += phases_.seek;
    }
    if (phases_.rotation > 0) {
      tracer.span(obs::Track::kDisk, "disk", "rotate", cursor,
                  cursor + phases_.rotation);
      cursor += phases_.rotation;
    }
    if (phases_.transfer > 0) {
      tracer.span(obs::Track::kDisk, "disk",
                  phases_.cache_hit ? "cache-hit" : "transfer", cursor,
                  cursor + phases_.transfer);
    }
  }
  in_service_hits_.swap(media_lse_hits_);
  media_lse_hits_.clear();
  in_service_outcome_ = result_;
  in_service_ = std::move(p);
  in_service_failed_ = false;
  sim_.arm(completion_event_, busy_until_);
}

void DiskModel::complete_in_service() {
  // Pull the completion state onto the stack first: start(next) below
  // re-fills the in_service_ members for the next command.
  Pending p = std::move(in_service_);
  if (in_service_failed_) {
    DiskResult r;
    r.latency = sim_.now() - p.submitted;
    r.status = IoStatus::kDiskFailed;
    busy_ = false;
    if (queue_.empty()) {
      accrue_energy();
      power_ = PowerState::kIdle;
    } else {
      Pending next = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(next));
    }
    if (p.on_complete) p.on_complete(p.cmd, r);
    return;
  }
  DiskResult r = in_service_outcome_;
  r.latency = sim_.now() - p.submitted;
  busy_ = false;
  if (queue_.empty()) {
    accrue_energy();
    power_ = PowerState::kIdle;
  }
  std::vector<Lbn> hits = std::move(in_service_hits_);
  in_service_hits_.clear();
  if (!hits.empty() && lse_observer_) {
    const bool is_read = p.cmd.kind == CommandKind::kRead;
    for (Lbn bad : hits) lse_observer_(bad, is_read);
  }
  // Hand the next queued command to the mechanism before running the
  // completion callback, so a callback that observes busy() sees the
  // drive already working on its backlog (as a real host would).
  if (!queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
  if (p.on_complete) p.on_complete(p.cmd, r);
}

SimTime DiskModel::service(const DiskCommand& cmd) {
  const SimTime p = profile_.rotation_period();
  SimTime t = profile_.command_overhead;
  phases_ = {};
  result_ = {};

  switch (cmd.kind) {
    case CommandKind::kVerifyAta:
      if (profile_.cache_enabled) {
        // Fig 1 pathology: answered from the cache/electronics without a
        // media access. Mechanical state does not change.
        ++counters_.verifies;
        counters_.verified_bytes += cmd.bytes();
        phases_.cache_hit = true;
        phases_.transfer =
            profile_.ata_verify_cache_base +
            static_cast<SimTime>(profile_.ata_verify_cache_ns_per_byte *
                                 static_cast<double>(cmd.bytes()));
        return t + phases_.transfer + profile_.completion_overhead;
      }
      break;  // cache off: behaves like a media-bound verify below
    case CommandKind::kRead:
      if (profile_.cache_enabled && cache_.lookup(cmd.lbn, cmd.sectors)) {
        ++counters_.reads;
        ++counters_.cache_hits;
        counters_.read_bytes += cmd.bytes();
        phases_.cache_hit = true;
        phases_.transfer = profile_.cache_hit_overhead +
                           profile_.bus_transfer(cmd.bytes());
        return t + phases_.transfer + profile_.completion_overhead;
      }
      break;
    default:
      break;
  }

  // ---- Mechanical path ----
  ++counters_.media_accesses;

  // Latent sector errors in the touched range. WRITEs repair (sector
  // reallocation); READs pay the drive's error-recovery retries; VERIFYs
  // detect. Note the ATA-verify-from-cache path above never reaches here:
  // a cache-answered VERIFY cannot detect LSEs -- exactly why the paper
  // flags it as broken.
  SimTime lse_time = 0;
  {
    auto it = lse_.lower_bound(cmd.lbn);
    while (it != lse_.end() && *it < cmd.lbn + cmd.sectors) {
      if (cmd.kind == CommandKind::kWrite) {
        // Remap-on-write: the drive reallocates the sector to a spare and
        // the rewrite heals it (RAID reconstruct-and-rewrite lands here).
        ++counters_.lse_repaired;
        it = lse_.erase(it);
        continue;
      }
      ++counters_.lse_detected;
      media_lse_hits_.push_back(*it);
      if (errors_.in_band) {
        // The drive grinds through its internal retry loop on every bad
        // sector and then reports the first one it could not recover.
        lse_time += errors_.desktop_recovery;
        if (result_.status == IoStatus::kOk) {
          result_.status = IoStatus::kMediaError;
          result_.error_lbn = *it;
        }
      } else if (cmd.kind == CommandKind::kRead) {
        lse_time += lse_read_penalty_;
      }
      ++it;
    }
  }
  if (result_.status == IoStatus::kMediaError) {
    // ERC/TLER caps the whole command's recovery effort; desktop firmware
    // keeps grinding for the full per-sector budget.
    if (errors_.erc_timeout > 0) {
      lse_time = std::min(lse_time, errors_.erc_timeout);
    }
    ++counters_.media_errors;
  } else if (errors_.transient_error_prob > 0 &&
             cmd.kind != CommandKind::kWrite &&
             rng_.bernoulli(errors_.transient_error_prob)) {
    result_.status = IoStatus::kTransientError;
    lse_time += errors_.transient_recovery;
    ++counters_.transient_errors;
  }
  if (lse_time > 0 && errors_.in_band) {
    const SimTime per_attempt = std::max<SimTime>(1, errors_.retry_interval);
    const std::int64_t attempts =
        std::max<std::int64_t>(1, lse_time / per_attempt);
    result_.internal_retries = attempts;
    counters_.internal_retries += attempts;
    counters_.recovery_time += lse_time;
  }

  const PhysicalPos pos = geometry_.locate(cmd.lbn);

  // Seek.
  const std::int64_t dist = std::llabs(pos.cylinder - head_cylinder_);
  phases_.seek = profile_.seek_time(dist, geometry_.cylinders());
  t += phases_.seek;

  // Rotational latency: wait until the start sector's angle passes under
  // the head. Some firmware re-acquires the track at an arbitrary phase on
  // VERIFY (observed on the Deskstar); model that as a uniform draw.
  const SimTime at_track = sim_.now() + t;
  double gap;
  if (is_verify(cmd.kind) && profile_.verify_random_phase) {
    gap = rng_.uniform();
  } else {
    gap = pos.angle - phase_at(at_track);
    if (gap < 0) gap += 1.0;
  }
  phases_.rotation = static_cast<SimTime>(gap * static_cast<double>(p));
  t += phases_.rotation;

  // Media transfer at this zone's density, plus track switches.
  const double revolutions =
      static_cast<double>(cmd.sectors) / static_cast<double>(pos.spt);
  phases_.transfer = static_cast<SimTime>(revolutions * static_cast<double>(p)) +
                     static_cast<std::int64_t>(revolutions) *
                         profile_.track_switch;
  t += phases_.transfer;

  // Head ends past the last sector of the request.
  const Lbn end_lbn = cmd.lbn + cmd.sectors - 1;
  head_cylinder_ = geometry_.locate(end_lbn).cylinder;

  switch (cmd.kind) {
    case CommandKind::kRead: {
      ++counters_.reads;
      counters_.read_bytes += cmd.bytes();
      phases_.transfer += profile_.bus_transfer(cmd.bytes());
      t += profile_.bus_transfer(cmd.bytes());
      // A failed read delivers no data, so nothing lands in the cache --
      // otherwise a host retry would "succeed" from cache over a sector
      // the medium cannot actually return.
      if (profile_.cache_enabled && result_.ok()) {
        std::int64_t span = cmd.sectors;
        // Read-ahead: the drive keeps reading the track into a cache
        // segment after the host transfer. Charged no extra time: it
        // happens while the host digests the completion.
        span += profile_.prefetch_bytes / kSectorBytes;
        span = std::min(span, geometry_.total_sectors() - cmd.lbn);
        cache_.insert(cmd.lbn, span);
      }
      break;
    }
    case CommandKind::kWrite:
      ++counters_.writes;
      counters_.write_bytes += cmd.bytes();
      phases_.transfer += profile_.bus_transfer(cmd.bytes());
      t += profile_.bus_transfer(cmd.bytes());
      break;
    case CommandKind::kVerifyScsi:
      // Never transfers data and never populates the cache: this is the
      // property that makes SCSI VERIFY the right scrub primitive.
      ++counters_.verifies;
      counters_.verified_bytes += cmd.bytes();
      break;
    case CommandKind::kVerifyAta:
      // Cache disabled: media-bound verify, but (faithfully to the Fig 1
      // observation) the data it touches lands in the cache when re-enabled
      // later -- irrelevant here since the cache is off.
      ++counters_.verifies;
      counters_.verified_bytes += cmd.bytes();
      break;
  }

  phases_.recovery = lse_time;
  return t + lse_time + profile_.completion_overhead;
}

void DiskModel::set_timeline(const obs::TimelineSink& sink) {
  timeline_ = sink;
  timeline_ready_ = false;
}

void DiskModel::record_timeline_busy(const DiskCommand& cmd, SimTime t0,
                                     SimTime t1, SimTime recovery) {
  if (!timeline_ready_) {
    obs::Timeline& tl = *timeline_.timeline;
    using Kind = obs::Timeline::SeriesKind;
    tl_fg_ = tl.series(timeline_.name(".util.foreground"), Kind::kCounter);
    tl_scrub_ = tl.series(timeline_.name(".util.scrub"), Kind::kCounter);
    tl_rebuild_ = tl.series(timeline_.name(".util.rebuild"), Kind::kCounter);
    tl_retry_ = tl.series(timeline_.name(".util.retry"), Kind::kCounter);
    timeline_ready_ = true;
  }
  obs::Timeline& tl = *timeline_.timeline;
  recovery = std::clamp<SimTime>(recovery, 0, t1 - t0);
  const obs::Timeline::SeriesId id = cmd.rebuild    ? tl_rebuild_
                                     : is_verify(cmd.kind) ? tl_scrub_
                                                           : tl_fg_;
  if (t1 - t0 > recovery) {
    tl.add_span(id, t0, t1 - recovery, to_seconds(t1 - t0 - recovery));
  }
  if (recovery > 0) {
    // The retry grind sits at the tail of service (after positioning).
    tl.add_span(tl_retry_, t1 - recovery, t1, to_seconds(recovery));
  }
}

void DiskModel::inject_lse(Lbn lbn) {
  assert(lbn >= 0 && lbn < geometry_.total_sectors());
  lse_.insert(lbn);
}

void DiskModel::repair_lse(Lbn lbn) {
  if (lse_.erase(lbn) > 0) ++counters_.lse_repaired;
}

double DiskModel::state_watts(PowerState s) const {
  switch (s) {
    case PowerState::kActive: return profile_.active_watts;
    case PowerState::kIdle: return profile_.idle_watts;
    case PowerState::kStandby: return profile_.standby_watts;
  }
  return profile_.idle_watts;
}

void DiskModel::accrue_energy() const {
  const SimTime now = sim_.now();
  SimTime from = energy_updated_at_;
  if (from >= now) return;
  // The spin-up surge overlays the active state for its duration.
  if (from < spinup_until_) {
    const SimTime surge_end = std::min(now, spinup_until_);
    energy_ += to_seconds(surge_end - from) * profile_.spinup_watts;
    from = surge_end;
  }
  if (from < now) {
    energy_ += to_seconds(now - from) * state_watts(power_);
  }
  energy_updated_at_ = now;
}

double DiskModel::energy_joules() const {
  accrue_energy();
  return energy_;
}

DiskModel::PowerState DiskModel::power_state() const {
  if (busy_) return PowerState::kActive;
  return power_;
}

bool DiskModel::spin_down() {
  if (busy_ || power_ == PowerState::kStandby) return false;
  accrue_energy();
  power_ = PowerState::kStandby;
  return true;
}

}  // namespace pscrub::disk
