#include "obs/timeline_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pscrub::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser -- just enough for the timeline schema.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_space();
    if (!value(out)) {
      error = error_;
      return false;
    }
    skip_space();
    if (pos_ != text_.size()) {
      error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.str);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null", 4);
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_space();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!string(key)) return false;
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_space();
      JsonValue v;
      if (!value(v)) return false;
      if (!out.fields.emplace(key, std::move(v)).second) {
        return fail("duplicate object key '" + key + "'");
      }
      skip_space();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_space();
      JsonValue v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skip_space();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + 1 + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // The writer only escapes control characters; anything else
            // would round-trip poorly, so keep it simple and reject.
            if (code > 0x7f) return fail("unsupported \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default: return fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  // The JSONL loader's own strict number parser: it pre-scans the token,
  // requires strtod/strtoll to consume it whole, and rejects non-finite
  // coercions -- the same reject-never-coerce contract as the env layer.
  // pscrub-lint: env-shim
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    out.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("invalid number");
    // strtod coerces overflowing exponents ("1e999") to +-inf while still
    // consuming the whole token; a strict loader rejects, never coerces.
    if (!std::isfinite(out.number)) return fail("non-finite number");
    if (integral && token.size() <= 19) {
      out.integer = std::strtoll(token.c_str(), &end, 10);
      out.is_integer = end != nullptr && *end == '\0';
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Typed field access. Schema errors throw std::invalid_argument; the
// loader catches at line granularity and reports with the line number.

const JsonValue& field(const JsonValue& obj, const char* name) {
  const auto it = obj.fields.find(name);
  if (it == obj.fields.end()) {
    throw std::invalid_argument(std::string("missing field '") + name + "'");
  }
  return it->second;
}

std::int64_t int_field(const JsonValue& obj, const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::kNumber || !v.is_integer) {
    throw std::invalid_argument(std::string("field '") + name +
                                "' must be an integer");
  }
  return v.integer;
}

double number_field(const JsonValue& obj, const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::kNumber) {
    throw std::invalid_argument(std::string("field '") + name +
                                "' must be a number");
  }
  return v.number;
}

const std::string& string_field(const JsonValue& obj, const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::kString) {
    throw std::invalid_argument(std::string("field '") + name +
                                "' must be a string");
  }
  return v.str;
}

const std::vector<JsonValue>& array_field(const JsonValue& obj,
                                          const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::kArray) {
    throw std::invalid_argument(std::string("field '") + name +
                                "' must be an array");
  }
  return v.items;
}

std::vector<std::pair<std::int32_t, std::int64_t>> parse_buckets(
    const JsonValue& obj) {
  std::vector<std::pair<std::int32_t, std::int64_t>> buckets;
  for (const JsonValue& pair : array_field(obj, "buckets")) {
    if (pair.type != JsonValue::Type::kArray || pair.items.size() != 2 ||
        !pair.items[0].is_integer || !pair.items[1].is_integer) {
      throw std::invalid_argument(
          "bucket entries must be [key, count] integer pairs");
    }
    buckets.emplace_back(static_cast<std::int32_t>(pair.items[0].integer),
                         pair.items[1].integer);
  }
  return buckets;
}

// ---------------------------------------------------------------------------
// Record handlers, applied to a scratch timeline.

void apply_series(const JsonValue& obj, Timeline& tl) {
  const std::string& name = string_field(obj, "name");
  const std::string& kind_str = string_field(obj, "kind");
  Timeline::SeriesKind kind;
  if (kind_str == "counter") {
    kind = Timeline::SeriesKind::kCounter;
  } else if (kind_str == "gauge") {
    kind = Timeline::SeriesKind::kGauge;
  } else if (kind_str == "digest") {
    kind = Timeline::SeriesKind::kDigest;
  } else {
    throw std::invalid_argument("unknown series kind '" + kind_str + "'");
  }
  const Timeline::SeriesId id = tl.series(name, kind);
  std::int64_t prev_index = -1;
  for (const JsonValue& entry : array_field(obj, "windows")) {
    std::int64_t index = 0;
    Timeline::Window w;
    QuantileDigest d;
    const QuantileDigest* dp = nullptr;
    if (kind == Timeline::SeriesKind::kDigest) {
      if (entry.type != JsonValue::Type::kObject) {
        throw std::invalid_argument("digest windows must be objects");
      }
      index = int_field(entry, "i");
      w.count = int_field(entry, "count");
      w.sum = number_field(entry, "sum");
      w.min = number_field(entry, "min");
      w.max = number_field(entry, "max");
      if (w.count <= 0) {
        throw std::invalid_argument("digest window count must be > 0");
      }
      d = QuantileDigest::from_parts(w.count, w.min, w.max,
                                     parse_buckets(entry));
      dp = &d;
    } else {
      if (entry.type != JsonValue::Type::kArray || entry.items.size() != 2 ||
          !entry.items[0].is_integer ||
          entry.items[1].type != JsonValue::Type::kNumber) {
        throw std::invalid_argument(
            "series windows must be [index, value] pairs");
      }
      index = entry.items[0].integer;
      if (kind == Timeline::SeriesKind::kCounter) {
        w.sum = entry.items[1].number;
      } else {
        w.last = entry.items[1].number;
        w.set = true;
      }
    }
    if (index < 0) throw std::invalid_argument("negative window index");
    if (index <= prev_index) {
      throw std::invalid_argument("window indices must be strictly increasing");
    }
    if (static_cast<std::size_t>(index) >= tl.config().max_windows) {
      throw std::invalid_argument("window index " + std::to_string(index) +
                                  " exceeds max_windows");
    }
    prev_index = index;
    tl.import_window(id, static_cast<std::size_t>(index), w, dp);
  }
}

void apply_digest(const JsonValue& obj, Timeline& tl) {
  const std::string& name = string_field(obj, "name");
  const std::int64_t count = int_field(obj, "count");
  if (count < 0) throw std::invalid_argument("digest count must be >= 0");
  QuantileDigest d =
      QuantileDigest::from_parts(count, number_field(obj, "min"),
                                 number_field(obj, "max"), parse_buckets(obj));
  tl.digest(name).merge(d);
}

void apply_events(const JsonValue& obj, Timeline& tl) {
  const std::string& name = string_field(obj, "name");
  Timeline::EventLog log;
  log.dropped = int_field(obj, "dropped");
  if (log.dropped < 0) {
    throw std::invalid_argument("events dropped must be >= 0");
  }
  for (const JsonValue& entry : array_field(obj, "events")) {
    if (entry.type != JsonValue::Type::kArray || entry.items.size() != 2 ||
        !entry.items[0].is_integer ||
        entry.items[1].type != JsonValue::Type::kString) {
      throw std::invalid_argument("events must be [t_ns, text] pairs");
    }
    log.items.emplace_back(entry.items[0].integer, entry.items[1].str);
  }
  tl.import_events(name, std::move(log));
}

}  // namespace

TimelineLoadResult load_timeline_jsonl(const std::string& text,
                                       Timeline& into) {
  TimelineLoadResult result;
  Timeline scratch;
  bool saw_meta = false;
  SimTime window_ns = 0;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++result.lines;
    const std::string where = "line " + std::to_string(result.lines) + ": ";

    JsonValue obj;
    if (!JsonParser(line).parse(obj, result.error)) {
      result.error = where + result.error;
      return result;
    }
    if (obj.type != JsonValue::Type::kObject) {
      result.error = where + "expected a JSON object";
      return result;
    }
    try {
      const std::string& type = string_field(obj, "type");
      if (!saw_meta) {
        if (type != "meta") {
          throw std::invalid_argument("first record must have type 'meta'");
        }
        if (int_field(obj, "version") != 1) {
          throw std::invalid_argument("unsupported timeline version");
        }
        window_ns = int_field(obj, "window_ns");
        const std::int64_t base_ns = int_field(obj, "base_window_ns");
        const std::int64_t max_windows = int_field(obj, "max_windows");
        if (window_ns <= 0 || base_ns <= 0 || max_windows <= 0) {
          throw std::invalid_argument("meta fields must be positive");
        }
        if (window_ns % base_ns != 0) {
          throw std::invalid_argument(
              "window_ns must be a multiple of base_window_ns");
        }
        // The scratch store must never coarsen during import, so size it
        // to the file's own bound at the file's current width.
        scratch.configure(
            {window_ns, static_cast<std::size_t>(max_windows)});
        saw_meta = true;
      } else if (type == "meta") {
        throw std::invalid_argument("duplicate meta record");
      } else if (type == "series") {
        apply_series(obj, scratch);
      } else if (type == "digest") {
        apply_digest(obj, scratch);
      } else if (type == "events") {
        apply_events(obj, scratch);
      } else {
        throw std::invalid_argument("unknown record type '" + type + "'");
      }
    } catch (const std::invalid_argument& e) {
      result.error = where + e.what();
      return result;
    }
  }
  if (!saw_meta) {
    result.error = "no meta record (empty input?)";
    return result;
  }

  const bool pristine = into.series_count() == 0 && into.digests().empty() &&
                        into.events().empty();
  if (pristine) {
    into.configure({window_ns, scratch.config().max_windows});
  }
  try {
    into.merge(scratch);
  } catch (const std::invalid_argument& e) {
    result.error = e.what();
    return result;
  }
  result.ok = true;
  return result;
}

TimelineLoadResult load_timeline_file(const std::string& path,
                                      Timeline& into) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    TimelineLoadResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    TimelineLoadResult result;
    result.error = "cannot read '" + path + "'";
    return result;
  }
  if (text.empty()) {
    TimelineLoadResult result;
    result.error = path + ": file is empty (no timeline data)";
    return result;
  }
  TimelineLoadResult result = load_timeline_jsonl(text, into);
  if (!result.ok) result.error = path + ": " + result.error;
  return result;
}

TimelineLoadResult validate_timeline_jsonl(const std::string& text) {
  Timeline scratch;
  return load_timeline_jsonl(text, scratch);
}

}  // namespace pscrub::obs
