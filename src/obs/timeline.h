// Sim-time windowed metric recorder with deterministic downsampling.
//
// A Timeline slices simulation time into fixed-width windows (aligned at
// t = 0) and records named series into them:
//
//   kCounter -- per-window accumulation (add / add_span); rendered as the
//               window's sum. add_span distributes an amount over the
//               windows a [t0, t1) span overlaps, proportionally.
//   kGauge   -- last-written-wins point samples (set_gauge); rendered as
//               the window's final value.
//   kDigest  -- per-window value distributions (observe): exact
//               count/sum/min/max plus a QuantileDigest per window.
//
// Series names follow the Registry dotted scheme ("<label>.disk.util.scrub"),
// so sweep output stays self-describing. The window store is BOUNDED:
// when an instant would land past `max_windows`, the whole timeline
// deterministically coarsens -- the window width doubles and adjacent
// window pairs fold together -- until the instant fits. A run of any
// length therefore costs O(max_windows) memory and every consumer sees
// the same widths regardless of how the run was chunked.
//
// merge() combines two timelines window-by-window after aligning widths
// by the same pairwise folding (widths must be power-of-two multiples of
// each other, which holds for any two timelines coarsened from one base
// width). Merging a fixed sequence of timelines in a fixed order is
// deterministic -- the contract exp::sweep relies on to make
// PSCRUB_TIMELINE output bit-identical for any worker count. Run-level
// digests additionally merge order-independently (see obs/digest.h).
//
// All mutators early-out when the timeline is disabled, so a compiled-in
// but unused timeline costs one branch per call site.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/digest.h"
#include "sim/time.h"

namespace pscrub::obs {

struct TimelineConfig {
  /// Base window width. Coarsening doubles it; it never shrinks.
  SimTime window = kSecond;
  /// Window-count bound that triggers coarsening.
  std::size_t max_windows = 256;
};

class Timeline {
 public:
  enum class SeriesKind : std::uint8_t { kCounter, kGauge, kDigest };
  using SeriesId = std::size_t;

  /// One window's scalar accumulation. Which fields are meaningful depends
  /// on the series kind (counter: sum/count; gauge: last/set; digest:
  /// count/sum/min/max).
  struct Window {
    double sum = 0.0;
    std::int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
    bool set = false;

    bool empty() const { return count == 0 && !set && sum == 0.0; }
  };

  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
    std::vector<Window> windows;
    /// kDigest only; parallel to `windows`.
    std::vector<QuantileDigest> digests;
  };

  /// Bounded per-name event list (timestamped markers: stand-downs,
  /// pass completions, failures).
  struct EventLog {
    std::vector<std::pair<SimTime, std::string>> items;
    std::int64_t dropped = 0;
  };
  static constexpr std::size_t kMaxEventsPerLog = 4096;

  /// Process-wide default timeline (what PSCRUB_TIMELINE exports).
  static Timeline& global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  const TimelineConfig& config() const { return config_; }
  /// Current window width (config().window after zero or more doublings).
  SimTime window_width() const { return width_; }

  /// Installs a new base config and clears all recorded data. Throws
  /// std::invalid_argument for a non-positive window or zero max_windows.
  void configure(const TimelineConfig& config);

  /// Drops recorded data; keeps config and enabled flag.
  void clear();

  /// Creates (or finds) a series. Throws std::invalid_argument when the
  /// name exists with a different kind. Ids are stable for the timeline's
  /// lifetime (until clear()/configure()).
  SeriesId series(const std::string& name, SeriesKind kind);

  std::size_t series_count() const { return series_.size(); }
  const Series& at(SeriesId id) const { return series_[id]; }
  const Series* find(const std::string& name) const;
  /// Sorted name -> id index (deterministic iteration for consumers).
  const std::map<std::string, SeriesId>& index() const { return index_; }

  // Mutators. All are no-ops while disabled. Negative times clamp to 0.
  void add(SeriesId id, SimTime t, double delta);
  /// Distributes `amount` over the windows [t0, t1) overlaps, proportional
  /// to overlap. A degenerate span (t1 <= t0) lands wholly at t0.
  void add_span(SeriesId id, SimTime t0, SimTime t1, double amount);
  void set_gauge(SeriesId id, SimTime t, double value);
  void observe(SeriesId id, SimTime t, double value);

  /// Run-level (un-windowed) digest by name; merges order-independently.
  QuantileDigest& digest(const std::string& name);
  const std::map<std::string, QuantileDigest>& digests() const {
    return digests_;
  }

  /// Appends a timestamped marker; drops (and counts) beyond
  /// kMaxEventsPerLog. No-op while disabled.
  void event(const std::string& name, SimTime t, const std::string& text);
  const std::map<std::string, EventLog>& events() const { return events_; }

  /// Accumulates `other` (see the header comment for the width-alignment
  /// and determinism contract). Gauges take `other`'s value where set
  /// (last merge wins, like Registry gauges). Throws std::invalid_argument
  /// when the widths are not power-of-two multiples of one another.
  void merge(const Timeline& other);

  /// One JSON object per line, keys and series in sorted-name order; see
  /// DESIGN.md §12 for the schema. Deterministic byte-for-byte.
  std::string to_jsonl() const;

  /// Writes to_jsonl() to `path`; false if the file cannot be written.
  bool write_jsonl_file(const std::string& path) const;

  // Serialization support (obs/timeline_io.cc): folds one window directly
  // into a series at `index`, growing the store as needed (no coarsening:
  // the loader pre-configures max_windows to fit the file).
  void import_window(SeriesId id, std::size_t index, const Window& w,
                     const QuantileDigest* d);
  void import_events(const std::string& name, EventLog log);

 private:
  std::size_t window_index_for(SimTime t);
  void coarsen();
  /// Folds `from` into `into`; `from` is the later (or merged-in) window,
  /// so its gauge value wins.
  static void fold(Window& into, const Window& from);

  bool enabled_ = false;
  TimelineConfig config_;
  SimTime width_ = kSecond;
  std::vector<Series> series_;
  std::map<std::string, SeriesId> index_;
  std::map<std::string, QuantileDigest> digests_;
  std::map<std::string, EventLog> events_;
};

/// Component-facing handle: a borrowed timeline plus the naming prefix the
/// component's series go under. Value type; components hold one and check
/// enabled() on their hot paths.
struct TimelineSink {
  Timeline* timeline = nullptr;
  std::string prefix;

  bool enabled() const { return timeline != nullptr && timeline->enabled(); }
  std::string name(const char* suffix) const { return prefix + suffix; }
};

}  // namespace pscrub::obs
