// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values are SimTime durations (nanoseconds). Each power-of-two range is
// split into 32 linear sub-buckets, so any recorded value lands in a bucket
// whose width is at most 1/32 (~3.1%) of its magnitude: percentiles come
// out with bounded relative error without storing a single sample. record()
// is O(1) (a bit-scan and an increment); memory is a fixed ~15 KB table.
//
// This is the shared vocabulary replacing the ad-hoc mean/max math that
// used to be duplicated across WorkloadMetrics and ScrubberStats, and the
// raw sample vectors previously needed for percentile reporting.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pscrub::obs {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear buckets per octave, bounding
  /// the relative quantization error at 1/32.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Octaves above the linear region (values are 63-bit non-negative).
  static constexpr int kBucketCount = (64 - kSubBucketBits) * kSubBuckets;

  void record(SimTime value) {
    if (value < 0) value = 0;
    if (counts_.empty()) counts_.assign(kBucketCount, 0);
    ++counts_[static_cast<std::size_t>(bucket_index(value))];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (count_ == 1 || value < min_) min_ = value;
  }

  std::int64_t count() const { return count_; }
  SimTime sum() const { return sum_; }
  /// Exact extrema (tracked outside the buckets).
  SimTime max() const { return max_; }
  SimTime min() const { return count_ == 0 ? 0 : min_; }

  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double mean_ms() const { return mean() / static_cast<double>(kMillisecond); }

  /// Value at percentile `p` in [0, 100], within ~3.1% relative error
  /// (exact at the extremes: p=0 -> min, p=100 -> max). An EMPTY
  /// histogram returns 0 for every percentile, by contract -- consistent
  /// with min()/mean() and asserted in the implementation. Check count()
  /// to distinguish "no samples" from "all samples were 0".
  SimTime percentile(double p) const;

  SimTime p50() const { return percentile(50.0); }
  SimTime p95() const { return percentile(95.0); }
  SimTime p99() const { return percentile(99.0); }

  /// Accumulates another histogram into this one.
  void merge(const LatencyHistogram& other);

  void reset() {
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = 0;
  }

  /// Bucket index for a non-negative value: values below kSubBuckets map
  /// exactly; above, the top kSubBucketBits+1 bits select octave and
  /// sub-bucket.
  static int bucket_index(SimTime value) {
    const auto v = static_cast<std::uint64_t>(value);
    if (v < kSubBuckets) return static_cast<int>(v);
    const int exponent =
        static_cast<int>(std::bit_width(v)) - 1;  // 2^e <= v < 2^(e+1)
    const int octave = exponent - kSubBucketBits + 1;
    const auto sub = static_cast<int>(v >> (exponent - kSubBucketBits)) -
                     kSubBuckets;
    return octave * kSubBuckets + sub;
  }

  /// Inclusive lower bound of a bucket (inverse of bucket_index).
  static SimTime bucket_lower(int index) {
    if (index < kSubBuckets) return index;
    const int octave = index >> kSubBucketBits;
    const int sub = index & (kSubBuckets - 1);
    return static_cast<SimTime>(
        static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1));
  }

  /// Exclusive upper bound of a bucket.
  static SimTime bucket_upper(int index) {
    if (index < kSubBuckets) return index + 1;
    const int octave = index >> kSubBucketBits;
    const int sub = index & (kSubBuckets - 1);
    return static_cast<SimTime>(
        static_cast<std::uint64_t>(kSubBuckets + sub + 1) << (octave - 1));
  }

 private:
  /// Lazily allocated so an idle histogram costs nothing beyond the
  /// scalars (stats structs are created in large numbers by sweeps).
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  SimTime sum_ = 0;
  SimTime max_ = 0;
  SimTime min_ = 0;
};

}  // namespace pscrub::obs
