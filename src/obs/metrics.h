// Metric primitives: counters, gauges, and the shared I/O stats bundle.
//
// Counter and Gauge are trivially cheap value types; IoStats is the one
// (requests, bytes, latency) vocabulary shared by every subsystem that
// used to hand-roll its own mean/throughput math (WorkloadMetrics,
// ScrubberStats). Percentiles come from the embedded LatencyHistogram, so
// no component needs to retain raw samples for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/time.h"

namespace pscrub::obs {

/// Monotonic event count. Implicitly converts to its value so call sites
/// that treated the old raw int64 fields arithmetically keep compiling.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  operator std::int64_t() const { return value_; }  // NOLINT(google-explicit-constructor)
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::int64_t delta) {
    value_ += delta;
    return *this;
  }

 private:
  std::int64_t value_ = 0;
};

/// Point-in-time measurement (queue depth, progress fraction, watts).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  operator double() const { return value_; }  // NOLINT(google-explicit-constructor)

 private:
  double value_ = 0.0;
};

/// MB/s of `bytes` moved over an observation `window` (0 when the window
/// is empty) -- the formula formerly duplicated across subsystem stats.
inline double throughput_mb_s(std::int64_t bytes, SimTime window) {
  if (window <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / to_seconds(window);
}

class Registry;

/// Request-stream accounting shared by foreground workloads and scrubbers:
/// request/byte counters plus a log-bucketed latency histogram.
struct IoStats {
  Counter requests;
  Counter bytes;
  /// Requests that completed with a typed error (media/transient/failed
  /// disk/timeout); still counted in `requests` and `latency`.
  Counter errors;
  LatencyHistogram latency;
  /// Per-request response times in seconds, kept only when `keep_samples`
  /// (exact ECDF plots); summary statistics never need them.
  std::vector<double> response_seconds;
  bool keep_samples = false;

  void record(std::int64_t request_bytes, SimTime lat) {
    ++requests;
    bytes += request_bytes;
    latency.record(lat);
    if (keep_samples) response_seconds.push_back(to_seconds(lat));
  }

  double mean_latency_ms() const { return latency.mean_ms(); }
  SimTime latency_sum() const { return latency.sum(); }
  SimTime max_latency() const { return latency.max(); }

  /// MB/s over an observation window.
  double throughput_mb_s(SimTime window) const {
    return obs::throughput_mb_s(bytes.value(), window);
  }

  /// Publishes this bundle into a registry under `prefix` (defined in
  /// registry.cc).
  void export_to(Registry& registry, const std::string& prefix) const;
};

}  // namespace pscrub::obs
