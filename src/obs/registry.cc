#include "obs/registry.h"

#include <cstdio>
#include <sstream>

namespace pscrub::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name] += c.value();
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge(h);
  }
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(c.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_double(out, g.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h.count());
    out += ", \"sum_ms\": ";
    append_double(out, to_milliseconds(h.sum()));
    out += ", \"mean_ms\": ";
    append_double(out, h.mean_ms());
    out += ", \"min_ms\": ";
    append_double(out, to_milliseconds(h.min()));
    out += ", \"max_ms\": ";
    append_double(out, to_milliseconds(h.max()));
    out += ", \"p50_ms\": ";
    append_double(out, to_milliseconds(h.p50()));
    out += ", \"p95_ms\": ";
    append_double(out, to_milliseconds(h.p95()));
    out += ", \"p99_ms\": ";
    append_double(out, to_milliseconds(h.p99()));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Registry::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

void IoStats::export_to(Registry& registry, const std::string& prefix) const {
  registry.counter(prefix + ".requests") += requests.value();
  registry.counter(prefix + ".bytes") += bytes.value();
  registry.counter(prefix + ".errors") += errors.value();
  registry.histogram(prefix + ".latency").merge(latency);
}

}  // namespace pscrub::obs
