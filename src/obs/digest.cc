#include "obs/digest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pscrub::obs {

namespace {

/// Magnitudes below collapse into the zero bucket; above saturate. Keeps
/// frexp exponents in a narrow band so keys stay well inside int32.
constexpr double kTinyMagnitude = 1e-300;
constexpr double kHugeMagnitude = 1e300;
/// Offset added to the frexp exponent so magnitude keys are positive.
constexpr int kExponentBias = 1100;

}  // namespace

std::int32_t QuantileDigest::bucket_key(double value) {
  if (std::isnan(value)) return 0;
  const bool negative = value < 0.0;
  double mag = negative ? -value : value;
  if (mag < kTinyMagnitude) return 0;
  if (mag > kHugeMagnitude) mag = kHugeMagnitude;
  int exponent = 0;
  const double mantissa = std::frexp(mag, &exponent);  // in [0.5, 1)
  int sub = static_cast<int>((mantissa - 0.5) * (2.0 * kSubBuckets));
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  const std::int32_t key =
      (exponent + kExponentBias) * kSubBuckets + sub + 1;
  return negative ? -key : key;
}

double QuantileDigest::bucket_value(std::int32_t key) {
  if (key == 0) return 0.0;
  const std::int32_t mag_key = key < 0 ? -key : key;
  const int exponent = (mag_key - 1) / kSubBuckets - kExponentBias;
  const int sub = (mag_key - 1) % kSubBuckets;
  const double lower =
      std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets),
                 exponent);
  const double upper =
      std::ldexp(0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets),
                 exponent);
  const double mid = lower + (upper - lower) / 2.0;
  return key < 0 ? -mid : mid;
}

void QuantileDigest::observe(double value) {
  if (std::isnan(value)) value = 0.0;
  value = std::clamp(value, -kHugeMagnitude, kHugeMagnitude);
  ++buckets_[bucket_key(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void QuantileDigest::merge(const QuantileDigest& other) {
  if (other.count_ == 0) return;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double QuantileDigest::sum() const {
  double total = 0.0;
  for (const auto& [key, n] : buckets_) {
    total += static_cast<double>(n) * bucket_value(key);
  }
  return total;
}

double QuantileDigest::mean() const {
  return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_);
}

double QuantileDigest::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::int64_t>(
      q * static_cast<double>(count_) + 0.5);
  const std::int64_t target = std::max<std::int64_t>(rank, 1);
  std::int64_t seen = 0;
  for (const auto& [key, n] : buckets_) {
    seen += n;
    if (seen >= target) {
      return std::clamp(bucket_value(key), min_, max_);
    }
  }
  return max_;
}

QuantileDigest QuantileDigest::from_parts(
    std::int64_t count, double min, double max,
    const std::vector<std::pair<std::int32_t, std::int64_t>>& buckets) {
  QuantileDigest d;
  std::int64_t total = 0;
  for (const auto& [key, n] : buckets) {
    if (n <= 0) {
      throw std::invalid_argument(
          "QuantileDigest::from_parts: non-positive bucket count for key " +
          std::to_string(key));
    }
    if (!d.buckets_.emplace(key, n).second) {
      throw std::invalid_argument(
          "QuantileDigest::from_parts: duplicate bucket key " +
          std::to_string(key));
    }
    total += n;
  }
  if (total != count) {
    throw std::invalid_argument(
        "QuantileDigest::from_parts: bucket counts sum to " +
        std::to_string(total) + ", expected count " + std::to_string(count));
  }
  if (count > 0 && !(min <= max)) {
    throw std::invalid_argument(
        "QuantileDigest::from_parts: min > max on a non-empty digest");
  }
  d.count_ = count;
  d.min_ = count > 0 ? min : 0.0;
  d.max_ = count > 0 ? max : 0.0;
  return d;
}

}  // namespace pscrub::obs
