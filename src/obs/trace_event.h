// Sim-time event tracer emitting Chrome trace-event JSON.
//
// The output loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one "process" (the simulation) with one named track
// per subsystem -- disk command service with seek/rotate/transfer phase
// slices, block-layer queueing per priority class, scrubber request
// lifecycles, idle-policy decisions, RAID rebuild progress. Timestamps
// are simulation time (the format's microseconds field carries sim-µs).
//
// The tracer is disabled by default and every instrumentation site guards
// on enabled(), so a null tracer costs one predictable branch; events are
// streamed to the file as they are emitted (no in-memory buffer to blow
// up on long runs). Single-threaded, like the simulator it observes: the
// thread that open()s a trace owns it, and an emit call from any other
// thread (e.g. an exp::sweep worker accidentally running under
// PSCRUB_TRACE) throws std::runtime_error instead of corrupting the
// stream. SweepRunner checks enabled() up front and falls back to serial
// execution, so the throw only fires on genuine misuse.
//
// Wiring: components reference Tracer::global(); setting PSCRUB_TRACE
// (see obs/env.h) or calling open() turns emission on process-wide.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <thread>

#include "sim/time.h"

namespace pscrub::obs {

/// One Perfetto track ("thread") per subsystem.
enum class Track : int {
  kDisk = 1,
  kQueueRealtime = 2,
  kQueueBestEffort = 3,
  kQueueIdle = 4,
  kScrubber = 5,
  kPolicy = 6,
  kRaid = 7,
  kWorkload = 8,
};

/// A key/value pair for an event's "args" object. Keys and string values
/// must outlive the call (string literals in practice).
struct Arg {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };
  const char* key;
  Kind kind;
  std::int64_t i = 0;
  double d = 0.0;
  const char* s = nullptr;

  Arg(const char* k, std::int64_t v) : key(k), kind(Kind::kInt), i(v) {}
  Arg(const char* k, int v) : key(k), kind(Kind::kInt), i(v) {}
  Arg(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  Arg(const char* k, const char* v) : key(k), kind(Kind::kString), s(v) {}
};

class Tracer {
 public:
  /// The process-wide tracer every subsystem reports to.
  static Tracer& global();

  Tracer() = default;
  ~Tracer() { close(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A disabled tracer makes every emit call a no-op; check this before
  /// doing any work to assemble args.
  bool enabled() const { return out_ != nullptr; }

  /// Opens `path` and starts a trace (closing any previous one). Returns
  /// false if the file cannot be created.
  bool open(const std::string& path);

  /// Finishes the JSON document and closes the file. Idempotent.
  void close();

  /// Complete event ("ph":"X"): a slice on `track` spanning [begin, end].
  void span(Track track, const char* category, const char* name,
            SimTime begin, SimTime end, std::initializer_list<Arg> args = {});

  /// Instant event ("ph":"i"): a point marker at `at`.
  void instant(Track track, const char* category, const char* name,
               SimTime at, std::initializer_list<Arg> args = {});

  /// Counter event ("ph":"C"): a named time series sampled at `at`.
  void counter(Track track, const char* name, const char* series, SimTime at,
               double value);

 private:
  void prelude(char phase, Track track, const char* category,
               const char* name, SimTime ts);
  void write_args(std::initializer_list<Arg> args);
  void metadata(int tid, const char* what, const char* value);
  /// Throws std::runtime_error when called off the owning thread.
  void check_owner() const;

  std::FILE* out_ = nullptr;
  bool first_event_ = true;
  std::thread::id owner_;
};

}  // namespace pscrub::obs
