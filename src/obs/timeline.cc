#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pscrub::obs {

Timeline& Timeline::global() {
  static Timeline instance;
  return instance;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Round-trip-exact double rendering: integral values print as integers
/// (the common case: counts, whole seconds), everything else at 17
/// significant digits so a loader reconstructs the identical bits.
void append_double(std::string& out, double v) {
  if (v == 0.0) {
    out += '0';
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

const char* kind_name(Timeline::SeriesKind kind) {
  switch (kind) {
    case Timeline::SeriesKind::kCounter: return "counter";
    case Timeline::SeriesKind::kGauge: return "gauge";
    case Timeline::SeriesKind::kDigest: return "digest";
  }
  return "?";
}

void append_buckets(std::string& out, const QuantileDigest& d) {
  out += "[";
  bool first = true;
  for (const auto& [key, n] : d.buckets()) {
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(key);
    out += ",";
    out += std::to_string(n);
    out += "]";
  }
  out += "]";
}

}  // namespace

void Timeline::configure(const TimelineConfig& config) {
  if (config.window <= 0) {
    throw std::invalid_argument(
        "Timeline::configure: window width must be > 0");
  }
  if (config.max_windows == 0) {
    throw std::invalid_argument(
        "Timeline::configure: max_windows must be >= 1");
  }
  config_ = config;
  clear();
}

void Timeline::clear() {
  width_ = config_.window;
  series_.clear();
  index_.clear();
  digests_.clear();
  events_.clear();
}

Timeline::SeriesId Timeline::series(const std::string& name,
                                    SeriesKind kind) {
  auto [it, inserted] = index_.emplace(name, series_.size());
  if (!inserted) {
    const Series& existing = series_[it->second];
    if (existing.kind != kind) {
      throw std::invalid_argument("Timeline::series: '" + name +
                                  "' already exists as kind " +
                                  kind_name(existing.kind));
    }
    return it->second;
  }
  Series s;
  s.name = name;
  s.kind = kind;
  series_.push_back(std::move(s));
  return it->second;
}

const Timeline::Series* Timeline::find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

void Timeline::fold(Window& into, const Window& from) {
  if (from.count > 0) {
    if (into.count == 0) {
      into.min = from.min;
      into.max = from.max;
    } else {
      into.min = std::min(into.min, from.min);
      into.max = std::max(into.max, from.max);
    }
  }
  into.sum += from.sum;
  into.count += from.count;
  if (from.set) {
    into.last = from.last;
    into.set = true;
  }
}

void Timeline::coarsen() {
  width_ *= 2;
  for (Series& s : series_) {
    const std::size_t n = s.windows.size();
    if (n == 0) continue;
    const std::size_t folded = (n + 1) / 2;
    std::vector<Window> windows(folded);
    for (std::size_t i = 0; i < folded; ++i) {
      windows[i] = s.windows[2 * i];
      if (2 * i + 1 < n) fold(windows[i], s.windows[2 * i + 1]);
    }
    s.windows = std::move(windows);
    if (s.kind == SeriesKind::kDigest) {
      std::vector<QuantileDigest> digests(folded);
      for (std::size_t i = 0; i < folded && i < (s.digests.size() + 1) / 2;
           ++i) {
        if (2 * i < s.digests.size()) digests[i] = s.digests[2 * i];
        if (2 * i + 1 < s.digests.size()) {
          digests[i].merge(s.digests[2 * i + 1]);
        }
      }
      s.digests = std::move(digests);
    }
  }
}

std::size_t Timeline::window_index_for(SimTime t) {
  if (t < 0) t = 0;
  auto index = static_cast<std::size_t>(t / width_);
  while (index >= config_.max_windows) {
    coarsen();
    index = static_cast<std::size_t>(t / width_);
  }
  return index;
}

namespace {

template <typename Series>
typename std::vector<Timeline::Window>::reference window_at(
    Series& s, std::size_t index) {
  if (s.windows.size() <= index) s.windows.resize(index + 1);
  if (s.kind == Timeline::SeriesKind::kDigest &&
      s.digests.size() <= index) {
    s.digests.resize(index + 1);
  }
  return s.windows[index];
}

}  // namespace

void Timeline::add(SeriesId id, SimTime t, double delta) {
  if (!enabled_) return;
  const std::size_t index = window_index_for(t);
  Window& w = window_at(series_[id], index);
  w.sum += delta;
  ++w.count;
}

void Timeline::add_span(SeriesId id, SimTime t0, SimTime t1, double amount) {
  if (!enabled_) return;
  if (t0 < 0) t0 = 0;
  if (t1 <= t0) {
    const std::size_t index = window_index_for(t0);
    window_at(series_[id], index).sum += amount;
    return;
  }
  // Sizing first may coarsen, so the first index must be computed after.
  const std::size_t last = window_index_for(t1 - 1);
  const auto first = static_cast<std::size_t>(t0 / width_);
  const double span = static_cast<double>(t1 - t0);
  for (std::size_t i = first; i <= last; ++i) {
    const SimTime w0 = static_cast<SimTime>(i) * width_;
    const SimTime overlap =
        std::min(t1, w0 + width_) - std::max(t0, w0);
    window_at(series_[id], i).sum +=
        amount * (static_cast<double>(overlap) / span);
  }
}

void Timeline::set_gauge(SeriesId id, SimTime t, double value) {
  if (!enabled_) return;
  const std::size_t index = window_index_for(t);
  Window& w = window_at(series_[id], index);
  w.last = value;
  w.set = true;
}

void Timeline::observe(SeriesId id, SimTime t, double value) {
  if (!enabled_) return;
  const std::size_t index = window_index_for(t);
  Series& s = series_[id];
  Window& w = window_at(s, index);
  if (w.count == 0) {
    w.min = value;
    w.max = value;
  } else {
    w.min = std::min(w.min, value);
    w.max = std::max(w.max, value);
  }
  w.sum += value;
  ++w.count;
  if (s.kind == SeriesKind::kDigest) s.digests[index].observe(value);
}

QuantileDigest& Timeline::digest(const std::string& name) {
  return digests_[name];
}

void Timeline::event(const std::string& name, SimTime t,
                     const std::string& text) {
  if (!enabled_) return;
  EventLog& log = events_[name];
  if (log.items.size() >= kMaxEventsPerLog) {
    ++log.dropped;
    return;
  }
  log.items.emplace_back(t, text);
}

void Timeline::import_events(const std::string& name, EventLog log) {
  EventLog& mine = events_[name];
  mine.dropped += log.dropped;
  mine.items.insert(mine.items.end(),
                    std::make_move_iterator(log.items.begin()),
                    std::make_move_iterator(log.items.end()));
  std::sort(mine.items.begin(), mine.items.end());
  if (mine.items.size() > kMaxEventsPerLog) {
    mine.dropped +=
        static_cast<std::int64_t>(mine.items.size() - kMaxEventsPerLog);
    mine.items.resize(kMaxEventsPerLog);
  }
}

void Timeline::import_window(SeriesId id, std::size_t index, const Window& w,
                             const QuantileDigest* d) {
  Series& s = series_[id];
  fold(window_at(s, index), w);
  if (d != nullptr && s.kind == SeriesKind::kDigest) {
    s.digests[index].merge(*d);
  }
}

void Timeline::merge(const Timeline& other) {
  for (const auto& [name, d] : other.digests_) digests_[name].merge(d);
  for (const auto& [name, log] : other.events_) import_events(name, log);
  if (other.series_.empty()) return;

  // Align widths by pairwise folding; both sides must sit on the same
  // power-of-two ladder (always true for timelines sharing a base width).
  while (width_ < other.width_) {
    if (other.width_ % width_ != 0) break;
    coarsen();
  }
  if (width_ % other.width_ != 0) {
    throw std::invalid_argument(
        "Timeline::merge: window widths " + std::to_string(width_) +
        " and " + std::to_string(other.width_) +
        " are not power-of-two multiples of one another");
  }

  for (const auto& [name, oid] : other.index_) {
    const Series& os = other.series_[oid];
    const SeriesId id = series(name, os.kind);
    for (std::size_t j = 0; j < os.windows.size(); ++j) {
      const Window& w = os.windows[j];
      const QuantileDigest* d =
          os.kind == SeriesKind::kDigest && j < os.digests.size() &&
                  os.digests[j].count() > 0
              ? &os.digests[j]
              : nullptr;
      if (w.empty() && d == nullptr) continue;
      // window_index_for may coarsen this timeline (capacity); already
      // merged windows fold consistently and the next mapping uses the
      // new width, so the result is the same as merging post-coarsened.
      const std::size_t target =
          window_index_for(static_cast<SimTime>(j) * other.width_);
      import_window(id, target, w, d);
    }
  }
}

std::string Timeline::to_jsonl() const {
  std::string out;
  out += "{\"type\":\"meta\",\"version\":1,\"window_ns\":" +
         std::to_string(width_) +
         ",\"base_window_ns\":" + std::to_string(config_.window) +
         ",\"max_windows\":" + std::to_string(config_.max_windows) + "}\n";

  for (const auto& [name, id] : index_) {
    const Series& s = series_[id];
    out += "{\"type\":\"series\",\"name\":";
    append_escaped(out, name);
    out += ",\"kind\":\"";
    out += kind_name(s.kind);
    out += "\",\"windows\":[";
    bool first = true;
    for (std::size_t j = 0; j < s.windows.size(); ++j) {
      const Window& w = s.windows[j];
      switch (s.kind) {
        case SeriesKind::kCounter:
          if (w.sum == 0.0 && w.count == 0) continue;
          if (!first) out += ",";
          first = false;
          out += "[";
          out += std::to_string(j);
          out += ",";
          append_double(out, w.sum);
          out += "]";
          break;
        case SeriesKind::kGauge:
          if (!w.set) continue;
          if (!first) out += ",";
          first = false;
          out += "[";
          out += std::to_string(j);
          out += ",";
          append_double(out, w.last);
          out += "]";
          break;
        case SeriesKind::kDigest: {
          if (w.count == 0) continue;
          if (!first) out += ",";
          first = false;
          out += "{\"i\":";
          out += std::to_string(j);
          out += ",\"count\":";
          out += std::to_string(w.count);
          out += ",\"sum\":";
          append_double(out, w.sum);
          out += ",\"min\":";
          append_double(out, w.min);
          out += ",\"max\":";
          append_double(out, w.max);
          out += ",\"buckets\":";
          append_buckets(out, s.digests[j]);
          out += "}";
          break;
        }
      }
    }
    out += "]}\n";
  }

  for (const auto& [name, d] : digests_) {
    out += "{\"type\":\"digest\",\"name\":";
    append_escaped(out, name);
    out += ",\"count\":";
    out += std::to_string(d.count());
    out += ",\"min\":";
    append_double(out, d.min());
    out += ",\"max\":";
    append_double(out, d.max());
    out += ",\"buckets\":";
    append_buckets(out, d);
    out += "}\n";
  }

  for (const auto& [name, log] : events_) {
    out += "{\"type\":\"events\",\"name\":";
    append_escaped(out, name);
    out += ",\"dropped\":";
    out += std::to_string(log.dropped);
    out += ",\"events\":[";
    // Canonical (t, text) order, matching import_events: an export must
    // not depend on whether the log was recorded live or restored from a
    // snapshot (same-instant records can arrive in either order).
    std::vector<std::pair<SimTime, std::string>> items = log.items;
    std::sort(items.begin(), items.end());
    bool first = true;
    for (const auto& [t, text] : items) {
      if (!first) out += ",";
      first = false;
      out += "[";
      out += std::to_string(t);
      out += ",";
      append_escaped(out, text);
      out += "]";
    }
    out += "]}\n";
  }
  return out;
}

bool Timeline::write_jsonl_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_jsonl();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace pscrub::obs
