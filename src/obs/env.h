// Environment-variable hookup for the observability layer.
//
//   PSCRUB_TRACE=out.json      stream a Chrome trace-event file for the run
//   PSCRUB_METRICS=out.json    dump the global metrics registry at exit
//   PSCRUB_TIMELINE=out.jsonl  enable the global Timeline and export it as
//                              JSONL at exit (schema in DESIGN.md §12)
//   PSCRUB_TIMELINE_WINDOW_MS=N  base window width for the timeline
//                              (default 1000 ms; coarsens automatically)
//
// An EnvSession at the top of main() makes any bench or example honor
// these variables: the constructor opens the tracer and configures the
// timeline, the destructor (or an explicit finish()) closes the tracer
// and writes the metrics/timeline snapshots. With no variables set the
// session is free.
#pragma once

#include <optional>
#include <string>

namespace pscrub::obs {

/// Strictly parses a positive integer environment value in [1, max].
/// `name` is the variable (for diagnostics), `text` its raw value.
/// Returns nullopt -- after an fprintf(stderr) warning naming the
/// variable -- for non-numeric text, trailing garbage ("100ms"),
/// non-positive values, or values above `max`, so a typo degrades to the
/// documented default loudly instead of silently parsing as 0 the way
/// atoll would. A null/empty `text` returns nullopt without a warning
/// (unset is not an error).
std::optional<long long> parse_positive_env(const char* name,
                                            const char* text, long long max);

/// Upper bound accepted for PSCRUB_SWEEP_WORKERS (shared by EnvSession's
/// up-front validation and exp::resolve_workers' per-sweep read).
inline constexpr long long kMaxSweepWorkers = 4096;

class EnvSession {
 public:
  EnvSession();
  ~EnvSession() { finish(); }
  EnvSession(const EnvSession&) = delete;
  EnvSession& operator=(const EnvSession&) = delete;

  /// Closes the tracer, writes Registry::global() to the PSCRUB_METRICS
  /// path and Timeline::global() to the PSCRUB_TIMELINE path (if set).
  /// Safe to call more than once.
  void finish();

  bool tracing() const { return tracing_; }
  bool timeline_enabled() const { return !timeline_path_.empty(); }

 private:
  std::string metrics_path_;
  std::string timeline_path_;
  bool tracing_ = false;
  bool finished_ = false;
};

}  // namespace pscrub::obs
