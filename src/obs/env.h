// Environment-variable hookup for the observability layer.
//
//   PSCRUB_TRACE=out.json      stream a Chrome trace-event file for the run
//   PSCRUB_METRICS=out.json    dump the global metrics registry at exit
//   PSCRUB_TIMELINE=out.jsonl  enable the global Timeline and export it as
//                              JSONL at exit (schema in DESIGN.md §12)
//   PSCRUB_TIMELINE_WINDOW_MS=N  base window width for the timeline
//                              (default 1000 ms; coarsens automatically)
//
// An EnvSession at the top of main() makes any bench or example honor
// these variables: the constructor opens the tracer and configures the
// timeline, the destructor (or an explicit finish()) closes the tracer
// and writes the metrics/timeline snapshots. With no variables set the
// session is free.
#pragma once

#include <optional>
#include <string>

namespace pscrub::obs {

/// Strictly parses a positive integer environment value in [1, max].
/// `name` is the variable (for diagnostics), `text` its raw value.
/// Returns nullopt -- after an fprintf(stderr) warning naming the
/// variable -- for non-numeric text, trailing garbage ("100ms"),
/// non-positive values, or values above `max`, so a typo degrades to the
/// documented default loudly instead of silently parsing as 0 the way
/// atoll would. A null/empty `text` returns nullopt without a warning
/// (unset is not an error).
std::optional<long long> parse_positive_env(const char* name,
                                            const char* text, long long max);

/// Strictly parses a positive floating-point environment value in
/// (0, max]. Same loud-fallback contract as parse_positive_env: trailing
/// garbage ("0.5x"), non-numeric text, non-finite results (overflowing
/// exponents like "1e999"), non-positive values, and values above `max`
/// all warn on stderr and return nullopt -- never a silently coerced 0.
/// A null/empty `text` returns nullopt without a warning.
std::optional<double> parse_positive_double_env(const char* name,
                                                const char* text, double max);

/// Upper bound accepted for PSCRUB_SWEEP_WORKERS (shared by EnvSession's
/// up-front validation and exp::resolve_workers' per-sweep read).
inline constexpr long long kMaxSweepWorkers = 4096;

/// The one strict read of PSCRUB_SWEEP_WORKERS: getenv + parse_positive_env
/// with the shared kMaxSweepWorkers bound. Both EnvSession's up-front
/// validation and exp::resolve_workers route through here so the accepted
/// grammar cannot drift between the two call sites. Warns on stderr for
/// malformed values every call; callers that re-read per sweep cache the
/// result to keep the warning once-per-process.
std::optional<int> sweep_workers_env();

class EnvSession {
 public:
  EnvSession();
  ~EnvSession() { finish(); }
  EnvSession(const EnvSession&) = delete;
  EnvSession& operator=(const EnvSession&) = delete;

  /// Closes the tracer, writes Registry::global() to the PSCRUB_METRICS
  /// path and Timeline::global() to the PSCRUB_TIMELINE path (if set).
  /// Safe to call more than once.
  void finish();

  bool tracing() const { return tracing_; }
  bool timeline_enabled() const { return !timeline_path_.empty(); }

 private:
  std::string metrics_path_;
  std::string timeline_path_;
  bool tracing_ = false;
  bool finished_ = false;
};

}  // namespace pscrub::obs
