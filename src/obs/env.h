// Environment-variable hookup for the observability layer.
//
//   PSCRUB_TRACE=out.json    stream a Chrome trace-event file for the run
//   PSCRUB_METRICS=out.json  dump the global metrics registry at exit
//
// An EnvSession at the top of main() makes any bench or example honor
// both variables: the constructor opens the tracer, the destructor (or an
// explicit finish()) closes it and writes the metrics snapshot. With
// neither variable set the session is free.
#pragma once

#include <string>

namespace pscrub::obs {

class EnvSession {
 public:
  EnvSession();
  ~EnvSession() { finish(); }
  EnvSession(const EnvSession&) = delete;
  EnvSession& operator=(const EnvSession&) = delete;

  /// Closes the tracer and writes Registry::global() to the
  /// PSCRUB_METRICS path (if set). Safe to call more than once.
  void finish();

  bool tracing() const { return tracing_; }

 private:
  std::string metrics_path_;
  bool tracing_ = false;
  bool finished_ = false;
};

}  // namespace pscrub::obs
