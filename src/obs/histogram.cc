#include "obs/histogram.h"

#include <algorithm>
#include <cassert>

namespace pscrub::obs {

SimTime LatencyHistogram::percentile(double p) const {
  // Empty-metric contract: a histogram with no samples has no quantiles
  // and every percentile is 0 -- the same convention as min(), mean(),
  // and QuantileDigest::quantile(). Callers that need to distinguish
  // "empty" from "all-zero samples" must check count() themselves.
  assert((count_ == 0) == counts_.empty());
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;

  // Rank of the requested percentile, 1-based (nearest-rank definition).
  const auto rank = static_cast<std::int64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  const std::int64_t target = std::max<std::int64_t>(rank, 1);

  std::int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::int64_t c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    seen += c;
    if (seen >= target) {
      // Midpoint of the bucket, clamped to the exact observed extrema so
      // quantization never reports values outside [min, max].
      const SimTime mid = bucket_lower(i) + (bucket_upper(i) - bucket_lower(i)) / 2;
      return std::clamp(mid, min(), max_);
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (int i = 0; i < kBucketCount; ++i) {
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace pscrub::obs
