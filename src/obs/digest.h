// Mergeable quantile digest over doubles.
//
// A QuantileDigest is the fleet-side companion of LatencyHistogram: a
// sparse log-bucketed sketch whose merge is ORDER-INDEPENDENT -- merging
// any permutation of the same digests yields a bit-identical digest. That
// is a stronger contract than Registry::merge (deterministic under a fixed
// merge order): timeline digests from sweep tasks, JSONL files, or whole
// machines can be combined in whatever order they arrive.
//
// Order independence is what dictates the representation. Bucket counts,
// the total count, and the exact extrema all combine with commutative
// integer/compare operations; sum() is NOT stored but derived from the
// bucket counts (count * bucket midpoint, accumulated in key order), so it
// is approximate within the bucket resolution yet identical for any merge
// order. Values land in sign-symmetric base-2 buckets split into
// kSubBuckets linear sub-buckets, bounding the relative quantization error
// at 1/kSubBuckets (~6% with the default 16).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pscrub::obs {

class QuantileDigest {
 public:
  /// 2^4 = 16 linear sub-buckets per octave: ~6% worst-case relative
  /// error, and small enough that per-window digests stay cheap.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  /// Records one observation. Non-finite values are clamped (NaN counts as
  /// 0); magnitudes outside [1e-300, 1e300] collapse to the zero bucket /
  /// saturate, keeping every key well inside int32.
  void observe(double value);

  /// Accumulates `other`. Commutative and associative: for any permutation
  /// of the same merge sequence the resulting digest is bit-identical.
  void merge(const QuantileDigest& other);

  std::int64_t count() const { return count_; }
  /// Exact extrema; 0 when empty (the shared empty-metric contract, see
  /// LatencyHistogram::percentile).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Bucket-midpoint approximation of the sum (order-independent by
  /// construction; see the header comment). 0 when empty.
  double sum() const;
  double mean() const;

  /// Value at quantile `q` in [0, 1] by the nearest-rank rule, clamped to
  /// the exact [min, max]. An empty digest has no quantiles and returns 0
  /// by contract.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void clear() {
    buckets_.clear();
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
  }

  /// Sparse bucket table, keyed so that key order == value order (negative
  /// keys hold negative values).
  const std::map<std::int32_t, std::int64_t>& buckets() const {
    return buckets_;
  }

  /// Bucket key for a value (see observe() for the clamping rules).
  static std::int32_t bucket_key(double value);
  /// Midpoint of a bucket (inverse-ish of bucket_key; exact for key 0).
  static double bucket_value(std::int32_t key);

  /// Reconstructs a digest from serialized parts (timeline JSONL). Throws
  /// std::invalid_argument when the parts are inconsistent: non-positive
  /// bucket counts, duplicate keys, a total that disagrees with `count`,
  /// or min > max on a non-empty digest.
  static QuantileDigest from_parts(
      std::int64_t count, double min, double max,
      const std::vector<std::pair<std::int32_t, std::int64_t>>& buckets);

 private:
  std::map<std::int32_t, std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pscrub::obs
