// Named-metric registry with JSON snapshot export.
//
// A Registry owns counters, gauges, and latency histograms addressed by
// name; looking a name up creates the metric on first use and returns a
// stable reference thereafter (std::map nodes never move). Collection is
// pull-based: subsystems keep their own cheap stats structs and publish
// them into a registry (export_to / export_metrics) only when a snapshot
// is wanted, so the hot paths carry zero registry overhead.
//
// to_json() renders the whole registry as one JSON object; PSCRUB_METRICS
// (see obs/env.h) dumps the global registry to a file at exit so every
// bench and example can emit machine-readable results.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.h"

namespace pscrub::obs {

class Registry {
 public:
  /// Process-wide default registry (what PSCRUB_METRICS exports).
  static Registry& global();

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  bool has_gauge(const std::string& name) const {
    return gauges_.count(name) != 0;
  }
  bool has_histogram(const std::string& name) const {
    return histograms_.count(name) != 0;
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Accumulates `other` into this registry: counters add, histograms
  /// merge, gauges take `other`'s value (last merge wins). Merging a fixed
  /// sequence of registries in a fixed order is therefore deterministic --
  /// the contract exp::sweep relies on to make parallel metric snapshots
  /// bit-identical to serial ones.
  void merge(const Registry& other);
  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms render count/sum/mean/min/max/p50/p95/p99 (times in ms).
  /// Keys are emitted in sorted order, so output is deterministic. EVERY
  /// registered histogram appears, including empty ones -- an idle metric
  /// renders as {"count": 0, ...all-zero stats...} rather than vanishing,
  /// so consumers can tell "never happened" from "not instrumented".
  /// merge() preserves this: merging in an empty histogram still registers
  /// its name.
  std::string to_json() const;

  /// Writes to_json() to `path`. Returns false (and leaves no partial
  /// file behind on open failure) if the file cannot be written.
  bool write_json_file(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace pscrub::obs
