// Loading and validation of timeline JSONL files (the PSCRUB_TIMELINE
// export format, schema in DESIGN.md §12).
//
// The loader is strict: every line must parse as a JSON object of a known
// type with correctly-typed fields, the first line must be a version-1
// meta record, and digest parts must be internally consistent
// (QuantileDigest::from_parts). Loading never partially applies a bad
// file -- records land in a scratch timeline that is merged into the
// destination only after the whole file validated.
//
// Dependency-free by design: pscrub-report and the CI schema checker link
// only pscrub_obs.
#pragma once

#include <string>

#include "obs/timeline.h"

namespace pscrub::obs {

struct TimelineLoadResult {
  bool ok = false;
  /// Human-readable description of the first problem, empty when ok.
  std::string error;
  /// Lines consumed (counts even the line an error was found on).
  int lines = 0;

  explicit operator bool() const { return ok; }
};

/// Parses `text` (one JSON object per line) and merges its contents into
/// `into`. When `into` holds no data yet, it is first configured from the
/// file's meta record so widths align; otherwise the usual
/// Timeline::merge width contract applies (mismatched widths that are not
/// power-of-two multiples fail with an error, not a throw).
TimelineLoadResult load_timeline_jsonl(const std::string& text,
                                       Timeline& into);

/// Reads `path` and forwards to load_timeline_jsonl.
TimelineLoadResult load_timeline_file(const std::string& path,
                                      Timeline& into);

/// Schema validation only: parses into a scratch timeline and discards it.
TimelineLoadResult validate_timeline_jsonl(const std::string& text);

}  // namespace pscrub::obs
