#include "obs/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace_event.h"

namespace pscrub::obs {

// pscrub-lint: env-shim -- this function IS the strict integer layer.
std::optional<long long> parse_positive_env(const char* name,
                                            const char* text, long long max) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr,
                 "%s: ignoring non-numeric value '%s' (expected a positive "
                 "integer)\n",
                 name, text);
    return std::nullopt;
  }
  if (errno == ERANGE || parsed <= 0 || parsed > max) {
    std::fprintf(stderr,
                 "%s: ignoring out-of-range value '%s' (expected 1..%lld)\n",
                 name, text, max);
    return std::nullopt;
  }
  return parsed;
}

// pscrub-lint: env-shim -- this function IS the strict double layer.
std::optional<double> parse_positive_double_env(const char* name,
                                                const char* text, double max) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr,
                 "%s: ignoring non-numeric value '%s' (expected a positive "
                 "number)\n",
                 name, text);
    return std::nullopt;
  }
  // !(parsed > 0.0) also catches NaN; the explicit upper compare catches
  // overflowed exponents ("1e999" -> inf) without needing errno.
  if (!(parsed > 0.0) || !(parsed <= max)) {
    std::fprintf(stderr,
                 "%s: ignoring out-of-range value '%s' (expected a positive "
                 "number <= %g)\n",
                 name, text, max);
    return std::nullopt;
  }
  return parsed;
}

// Fetches the variable and routes it straight through parse_positive_env;
// no other parsing happens here.
// pscrub-lint: env-shim
std::optional<int> sweep_workers_env() {
  const std::optional<long long> parsed =
      parse_positive_env("PSCRUB_SWEEP_WORKERS",
                         std::getenv("PSCRUB_SWEEP_WORKERS"),
                         kMaxSweepWorkers);
  if (!parsed) return std::nullopt;
  return static_cast<int>(*parsed);
}

// The session reads presence/path variables verbatim and routes every
// numeric value through parse_positive_env.
// pscrub-lint: env-shim
EnvSession::EnvSession() {
  if (const char* path = std::getenv("PSCRUB_TRACE"); path && *path) {
    if (Tracer::global().open(path)) {
      tracing_ = true;
    } else {
      std::fprintf(stderr, "PSCRUB_TRACE: cannot open %s for writing\n",
                   path);
    }
  }
  if (const char* path = std::getenv("PSCRUB_METRICS"); path && *path) {
    metrics_path_ = path;
  }
  if (const char* path = std::getenv("PSCRUB_TIMELINE"); path && *path) {
    timeline_path_ = path;
    TimelineConfig config;
    // Cap keeps ms -> SimTime multiplication below the i64 ceiling.
    if (const std::optional<long long> ms = parse_positive_env(
            "PSCRUB_TIMELINE_WINDOW_MS",
            std::getenv("PSCRUB_TIMELINE_WINDOW_MS"),
            std::numeric_limits<SimTime>::max() / kMillisecond)) {
      config.window = static_cast<SimTime>(*ms) * kMillisecond;
    }
    Timeline::global().configure(config);
    Timeline::global().set_enabled(true);
  }
  // Validate the sweep pool override up front: exp::resolve_workers reads
  // it on every sweep, and a typo there would otherwise surface only as a
  // once-per-process warning in the middle of a run.
  sweep_workers_env();
}

void EnvSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (tracing_) Tracer::global().close();
  if (!metrics_path_.empty() &&
      !Registry::global().write_json_file(metrics_path_)) {
    std::fprintf(stderr, "PSCRUB_METRICS: cannot write %s\n",
                 metrics_path_.c_str());
  }
  if (!timeline_path_.empty() &&
      !Timeline::global().write_jsonl_file(timeline_path_)) {
    std::fprintf(stderr, "PSCRUB_TIMELINE: cannot write %s\n",
                 timeline_path_.c_str());
  }
}

}  // namespace pscrub::obs
