#include "obs/env.h"

#include <cstdio>
#include <cstdlib>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::obs {

EnvSession::EnvSession() {
  if (const char* path = std::getenv("PSCRUB_TRACE"); path && *path) {
    if (Tracer::global().open(path)) {
      tracing_ = true;
    } else {
      std::fprintf(stderr, "PSCRUB_TRACE: cannot open %s for writing\n",
                   path);
    }
  }
  if (const char* path = std::getenv("PSCRUB_METRICS"); path && *path) {
    metrics_path_ = path;
  }
}

void EnvSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (tracing_) Tracer::global().close();
  if (!metrics_path_.empty() &&
      !Registry::global().write_json_file(metrics_path_)) {
    std::fprintf(stderr, "PSCRUB_METRICS: cannot write %s\n",
                 metrics_path_.c_str());
  }
}

}  // namespace pscrub::obs
