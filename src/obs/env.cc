#include "obs/env.h"

#include <cstdio>
#include <cstdlib>

#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace_event.h"

namespace pscrub::obs {

EnvSession::EnvSession() {
  if (const char* path = std::getenv("PSCRUB_TRACE"); path && *path) {
    if (Tracer::global().open(path)) {
      tracing_ = true;
    } else {
      std::fprintf(stderr, "PSCRUB_TRACE: cannot open %s for writing\n",
                   path);
    }
  }
  if (const char* path = std::getenv("PSCRUB_METRICS"); path && *path) {
    metrics_path_ = path;
  }
  if (const char* path = std::getenv("PSCRUB_TIMELINE"); path && *path) {
    timeline_path_ = path;
    TimelineConfig config;
    if (const char* ms = std::getenv("PSCRUB_TIMELINE_WINDOW_MS");
        ms && *ms) {
      const long long parsed = std::atoll(ms);
      if (parsed > 0) {
        config.window = static_cast<SimTime>(parsed) * kMillisecond;
      } else {
        std::fprintf(stderr,
                     "PSCRUB_TIMELINE_WINDOW_MS: ignoring non-positive "
                     "value '%s'\n",
                     ms);
      }
    }
    Timeline::global().configure(config);
    Timeline::global().set_enabled(true);
  }
}

void EnvSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (tracing_) Tracer::global().close();
  if (!metrics_path_.empty() &&
      !Registry::global().write_json_file(metrics_path_)) {
    std::fprintf(stderr, "PSCRUB_METRICS: cannot write %s\n",
                 metrics_path_.c_str());
  }
  if (!timeline_path_.empty() &&
      !Timeline::global().write_jsonl_file(timeline_path_)) {
    std::fprintf(stderr, "PSCRUB_TIMELINE: cannot write %s\n",
                 timeline_path_.c_str());
  }
}

}  // namespace pscrub::obs
