#include "obs/trace_event.h"

#include <stdexcept>

namespace pscrub::obs {

namespace {
constexpr int kPid = 1;

/// Track display names (indexed by Track value).
constexpr const char* kTrackNames[] = {
    nullptr,           "disk",          "block queue (rt)",
    "block queue (be)", "block queue (idle)", "scrubber",
    "idle policy",     "raid",          "workload",
};
constexpr int kTrackCount = 8;
}  // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

bool Tracer::open(const std::string& path) {
  close();
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) return false;
  first_event_ = true;
  owner_ = std::this_thread::get_id();
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", out_);
  metadata(0, "process_name", "pscrub simulation");
  for (int t = 1; t <= kTrackCount; ++t) {
    metadata(t, "thread_name", kTrackNames[t]);
  }
  return true;
}

void Tracer::close() {
  if (out_ == nullptr) return;
  std::fputs("\n]}\n", out_);
  std::fclose(out_);
  out_ = nullptr;
}

void Tracer::metadata(int tid, const char* what, const char* value) {
  if (!first_event_) std::fputs(",\n", out_);
  first_event_ = false;
  std::fprintf(out_,
               "{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": \"%s\", "
               "\"args\": {\"name\": \"%s\"}}",
               kPid, tid, what, value);
}

void Tracer::check_owner() const {
  if (std::this_thread::get_id() != owner_) {
    throw std::runtime_error(
        "obs::Tracer is single-threaded: events may only be emitted from "
        "the thread that open()ed the trace. Parallel sweeps must not "
        "trace from workers (exp::sweep runs serially while tracing).");
  }
}

void Tracer::prelude(char phase, Track track, const char* category,
                     const char* name, SimTime ts) {
  check_owner();
  if (!first_event_) std::fputs(",\n", out_);
  first_event_ = false;
  // ts is in microseconds; keep nanosecond precision as a fraction.
  std::fprintf(out_,
               "{\"ph\": \"%c\", \"pid\": %d, \"tid\": %d, \"cat\": \"%s\", "
               "\"name\": \"%s\", \"ts\": %lld.%03d",
               phase, kPid, static_cast<int>(track), category, name,
               static_cast<long long>(ts / 1000),
               // pscrub-lint: allow(sim-time-overflow) -- % 1000 bounds it
               static_cast<int>(ts % 1000));
}

void Tracer::write_args(std::initializer_list<Arg> args) {
  if (args.size() == 0) return;
  std::fputs(", \"args\": {", out_);
  bool first = true;
  for (const Arg& a : args) {
    if (!first) std::fputs(", ", out_);
    first = false;
    switch (a.kind) {
      case Arg::Kind::kInt:
        std::fprintf(out_, "\"%s\": %lld", a.key,
                     static_cast<long long>(a.i));
        break;
      case Arg::Kind::kDouble:
        std::fprintf(out_, "\"%s\": %.6g", a.key, a.d);
        break;
      case Arg::Kind::kString:
        std::fprintf(out_, "\"%s\": \"%s\"", a.key, a.s);
        break;
    }
  }
  std::fputc('}', out_);
}

void Tracer::span(Track track, const char* category, const char* name,
                  SimTime begin, SimTime end,
                  std::initializer_list<Arg> args) {
  if (!enabled()) return;
  if (end < begin) end = begin;
  prelude('X', track, category, name, begin);
  const SimTime dur = end - begin;
  std::fprintf(out_, ", \"dur\": %lld.%03d",
               static_cast<long long>(dur / 1000),
               // pscrub-lint: allow(sim-time-overflow) -- % 1000 bounds it
               static_cast<int>(dur % 1000));
  write_args(args);
  std::fputc('}', out_);
}

void Tracer::instant(Track track, const char* category, const char* name,
                     SimTime at, std::initializer_list<Arg> args) {
  if (!enabled()) return;
  prelude('i', track, category, name, at);
  std::fputs(", \"s\": \"t\"", out_);
  write_args(args);
  std::fputc('}', out_);
}

void Tracer::counter(Track track, const char* name, const char* series,
                     SimTime at, double value) {
  if (!enabled()) return;
  prelude('C', track, "counter", name, at);
  std::fprintf(out_, ", \"args\": {\"%s\": %.6g}", series, value);
  std::fputc('}', out_);
}

}  // namespace pscrub::obs
