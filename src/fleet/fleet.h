// Fleet layer: one ScenarioConfig scaled out to 100k-1M member disks in a
// single process.
//
// The paper's population claims (what fraction of a fleet's latent errors
// a scrub policy catches, and how soon) need fleet-scale populations, but
// the event-driven Scenario stack allocates a full DiskModel/BlockLayer/
// Scrubber tower per disk -- ~100 KB and two dozen heap objects each,
// untenable at 10^6 members. This layer replaces per-disk stacks with
// struct-of-arrays state (FleetState: a handful of parallel vectors, tens
// of bytes per disk) and evaluates each member's scrub schedule in closed
// form (core::ScheduleView + the view-based core::evaluate_mlet helpers,
// no virtual dispatch on the hot path). Burst arrivals still flow through
// the slab EventQueue -- one Simulator per shard, one persistent
// re-armable event per disk walking its burst list -- so fleet runs
// exercise the same event core the single-stack scenarios do.
//
// Determinism contract (the exp::sweep contract, one level up):
//
//   * every per-disk quantity is a pure function of the GLOBAL disk index
//     -- bursts from Rng(task_seed(fault.seed, i)), utilization from
//     Rng(task_seed(fleet.util_seed, i)) -- never of the shard that
//     happened to process the disk;
//   * shards are sweep tasks: their FleetState slices concatenate in
//     shard order (= disk order), their registries and timelines merge in
//     shard order;
//   * shard timelines record only integer-valued counters (integer double
//     addition is exact and associative below 2^53) and run-level
//     digests (order-independent merge), so the merged timeline is
//     byte-identical for any shard count and any worker count;
//   * fleet aggregates (means, digests, extrema) are computed on the
//     calling thread by iterating the concatenated arrays in disk order.
//
// Result: run_fleet output -- stdout tables built from FleetResult,
// PSCRUB_METRICS registry snapshots, PSCRUB_TIMELINE exports -- is
// bit-identical across any shards x workers combination, including 1x1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lse.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "obs/digest.h"
#include "obs/registry.h"
#include "sim/time.h"

namespace pscrub::fleet {

/// Struct-of-arrays per-disk state. All vectors are the same length (one
/// entry per member, global disk order); ~72 bytes per disk, so a million
/// members fit in well under 100 MB.
struct FleetState {
  /// Foreground utilization draw in [util_min, util_max).
  std::vector<double> utilization;
  /// Paced per-extent interval after the utilization stretch (scrubbing
  /// runs in the disk's idle fraction).
  std::vector<SimTime> effective_step;
  /// Full scrub pass duration: steps_per_pass * effective_step.
  std::vector<SimTime> pass_duration;
  /// LSE bursts / latent error sectors injected within the horizon.
  std::vector<std::int64_t> bursts;
  std::vector<std::int64_t> errors;
  /// Sum of detection delays (hours) in burst order; the per-disk MLET
  /// numerator (core::evaluate_mlet semantics).
  std::vector<double> delay_sum_hours;
  /// Per-disk MLET (0 for error-free disks) and worst single delay.
  std::vector<double> mlet_hours;
  std::vector<double> worst_hours;
  /// Foreground slowdown factor while scrubbing (>= 1).
  std::vector<double> slowdown;
  /// Scrub passes completed within the horizon, and the fraction of the
  /// next pass in flight when the horizon ends.
  std::vector<std::int64_t> passes;
  std::vector<double> progress;

  std::int64_t disks() const {
    return static_cast<std::int64_t>(utilization.size());
  }
  void resize(std::int64_t disks);
  /// Appends `other`'s disks after this state's (the shard-merge step;
  /// call in shard order).
  void append(const FleetState& other);
};

/// Reference-path result for one member (see run_member).
struct MemberResult {
  double utilization = 0.0;
  SimTime effective_step = 0;
  double slowdown = 1.0;
  core::MletResult mlet;
};

/// Fleet-level rollup: the concatenated per-disk state plus aggregates
/// computed from it in disk order.
struct FleetResult {
  std::string label;
  std::int64_t disks = 0;
  int shards = 0;
  SimTime horizon = 0;
  /// Per-disk state in global disk order.
  FleetState state;

  std::int64_t total_bursts = 0;
  std::int64_t total_errors = 0;
  /// Fleet MLET: total detection-delay hours over total errors (equals
  /// evaluating one giant error population, not a mean of per-disk means).
  double fleet_mlet_hours = 0.0;
  double worst_mlet_hours = 0.0;
  double mean_slowdown = 1.0;

  /// Distributions over members: per-disk MLET (disks with errors only),
  /// first-pass scrub completion time, utilization draw, slowdown.
  obs::QuantileDigest mlet_hours;
  obs::QuantileDigest completion_hours;
  obs::QuantileDigest utilization;
  obs::QuantileDigest slowdown;

  /// Publishes the rollup under `prefix` + ".fleet" (counters for the
  /// integer totals, gauges for the aggregates and digest percentiles).
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

/// Shard count a fleet run will use: `requested` when > 0 (clamped to the
/// disk count), else one shard per 16384 disks, in [1, 1024].
int resolve_shards(std::int64_t disks, int requested);

/// The member's utilization draw: pure function of (spec, disk_index).
double member_utilization(const exp::FleetSpec& spec, std::int64_t disk_index);

/// The utilization-stretched extent pace: (request_service +
/// request_spacing) / (1 - utilization), rounded to the nanosecond.
SimTime effective_step(const core::MletConfig& pacing, double utilization);

/// Foreground slowdown while scrubbing: with scrub load rho =
/// request_service / effective step, S = (1 - u) / (1 - u - rho), clamped
/// to 1e3 when the denominator vanishes (scrub consuming all idle time).
double slowdown_model(double utilization, SimTime request_service,
                      SimTime step);

/// Reference path: evaluates ONE member with the per-disk machinery the
/// rest of the repo uses -- StrategySpec::build's virtual-dispatch
/// strategy walked by the strategy-based core::evaluate_mlet, bursts from
/// fault::build_disk_fault_plan. The fleet's SoA path must match this
/// bit-for-bit per disk (the acceptance cross-check in test_fleet.cc).
MemberResult run_member(const exp::ScenarioConfig& config,
                        std::int64_t disk_index);

/// Runs the fleet described by `config` (validate_scenario applies;
/// config.fleet.disks must be > 0). Shards fan across exp::sweep per
/// `options` (workers, merge_into, timeline_into); `options.base_seed` is
/// unused -- all member randomness derives from config.fault.seed and
/// config.fleet.util_seed so results never depend on sweep wiring.
FleetResult run_fleet(const exp::ScenarioConfig& config,
                      const exp::SweepOptions& options = {});

}  // namespace pscrub::fleet
