#include "fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "disk/geometry.h"
#include "fault/fault_plan.h"
#include "obs/timeline.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace pscrub::fleet {

void FleetState::resize(std::int64_t disks) {
  const std::size_t n = static_cast<std::size_t>(disks);
  utilization.assign(n, 0.0);
  effective_step.assign(n, 0);
  pass_duration.assign(n, 0);
  bursts.assign(n, 0);
  errors.assign(n, 0);
  delay_sum_hours.assign(n, 0.0);
  mlet_hours.assign(n, 0.0);
  worst_hours.assign(n, 0.0);
  slowdown.assign(n, 1.0);
  passes.assign(n, 0);
  progress.assign(n, 0.0);
}

void FleetState::append(const FleetState& other) {
  auto cat = [](auto& dst, const auto& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  };
  cat(utilization, other.utilization);
  cat(effective_step, other.effective_step);
  cat(pass_duration, other.pass_duration);
  cat(bursts, other.bursts);
  cat(errors, other.errors);
  cat(delay_sum_hours, other.delay_sum_hours);
  cat(mlet_hours, other.mlet_hours);
  cat(worst_hours, other.worst_hours);
  cat(slowdown, other.slowdown);
  cat(passes, other.passes);
  cat(progress, other.progress);
}

int resolve_shards(std::int64_t disks, int requested) {
  if (requested > 0) {
    return static_cast<int>(
        std::min<std::int64_t>(requested, std::max<std::int64_t>(disks, 1)));
  }
  const std::int64_t by_size = (disks + 16383) / 16384;
  return static_cast<int>(std::clamp<std::int64_t>(by_size, 1, 1024));
}

double member_utilization(const exp::FleetSpec& spec,
                          std::int64_t disk_index) {
  if (spec.util_max <= 0.0) return 0.0;
  Rng rng(exp::task_seed(spec.util_seed,
                         static_cast<std::size_t>(disk_index)));
  return rng.uniform(spec.util_min, spec.util_max);
}

SimTime effective_step(const core::MletConfig& pacing, double utilization) {
  const SimTime base = pacing.request_service + pacing.request_spacing;
  if (utilization <= 0.0) return base;
  return static_cast<SimTime>(
      std::llround(static_cast<double>(base) / (1.0 - utilization)));
}

double slowdown_model(double utilization, SimTime request_service,
                      SimTime step) {
  const double rho =
      static_cast<double>(request_service) / static_cast<double>(step);
  const double denom = 1.0 - utilization - rho;
  if (denom <= 1e-3) return 1e3;
  return (1.0 - utilization) / denom;
}

namespace {

std::int64_t member_sectors(const exp::ScenarioConfig& config) {
  const disk::DiskProfile p = config.disk.profile();
  return disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
      .total_sectors();
}

std::string fleet_prefix(const exp::ScenarioConfig& config) {
  // Same resolution order as run_scenario's timeline wiring: explicit
  // TimelineSpec prefix, else the config label, else a fixed fallback so
  // unlabeled fleets still export somewhere findable.
  const std::string& base = !config.timeline.prefix.empty()
                                ? config.timeline.prefix
                                : config.label;
  return (base.empty() ? std::string("fleet") : base) + ".fleet.";
}

/// Per-shard working set: the flattened burst arrays plus everything the
/// per-disk event handler touches. Local disk indices are shard-relative;
/// `first_disk` maps them back to global.
struct ShardRun {
  core::ScheduleView schedule;
  core::MletConfig pacing;
  SimTime horizon = 0;
  std::int64_t first_disk = 0;

  // Flattened bursts (SoA): burst b covers
  // sectors[sector_begin[b], sector_begin[b + 1]), and local disk d owns
  // bursts [burst_begin[d], burst_begin[d + 1]).
  std::vector<SimTime> burst_at;
  std::vector<std::size_t> sector_begin;
  std::vector<disk::Lbn> sectors;
  std::vector<std::size_t> burst_begin;
  std::vector<std::size_t> cursor;    // next burst per local disk
  std::vector<EventId> burst_event;   // persistent event per local disk

  Simulator sim;
  FleetState out;

  obs::Timeline* timeline = nullptr;
  obs::Timeline::SeriesId lse_series = 0;
  obs::Timeline::SeriesId detect_series = 0;

  void fire(std::uint32_t local_disk);
};

/// Processes the one burst due now on `local_disk`, mirroring the
/// accumulation order of core::evaluate_mlet exactly (burst order per
/// disk; sector order within a burst), then re-arms for the disk's next
/// burst.
void ShardRun::fire(std::uint32_t local_disk) {
  const std::size_t d = local_disk;
  const std::size_t b = cursor[d]++;
  assert(b < burst_begin[d + 1]);
  const SimTime occurred = burst_at[b];
  const SimTime step = out.effective_step[d];
  const SimTime pass = out.pass_duration[d];
  const SimTime phase = occurred % pass;
  const disk::Lbn* secs = sectors.data() + sector_begin[b];
  const std::size_t count = sector_begin[b + 1] - sector_begin[b];

  out.bursts[d] += 1;
  if (timeline != nullptr) {
    timeline->add(lse_series, occurred, static_cast<double>(count));
  }

  if (pacing.scrub_on_detection) {
    const SimTime first_probe =
        core::burst_detection_delay(schedule, secs, count, phase, step, pass);
    const double hours = to_seconds(first_probe) / 3600.0;
    out.delay_sum_hours[d] += hours * static_cast<double>(count);
    out.worst_hours[d] = std::max(out.worst_hours[d], hours);
    out.errors[d] += static_cast<std::int64_t>(count);
    if (timeline != nullptr) {
      timeline->add(detect_series, occurred + first_probe,
                    static_cast<double>(count));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const SimTime delay =
          core::sector_detection_delay(schedule, secs[i], phase, step, pass);
      const double hours = to_seconds(delay) / 3600.0;
      out.delay_sum_hours[d] += hours;
      out.worst_hours[d] = std::max(out.worst_hours[d], hours);
      out.errors[d] += 1;
      if (timeline != nullptr) {
        timeline->add(detect_series, occurred + delay, 1.0);
      }
    }
  }

  if (cursor[d] < burst_begin[d + 1]) {
    sim.arm(burst_event[d], burst_at[cursor[d]]);
  }
}

/// Runs one shard's disks [first_disk, first_disk + disks): derives the
/// per-disk state, walks every burst through the event queue, and leaves
/// the shard's FleetState slice in `run.out`.
// pscrub-lint: sweep-worker
FleetState run_shard(const exp::ScenarioConfig& config,
                     std::int64_t first_disk, std::int64_t shard_disks,
                     exp::TaskContext& ctx) {
  const exp::FleetSpec& fl = config.fleet;
  const std::int64_t total_sectors = member_sectors(config);

  ShardRun run;
  run.schedule = config.scrubber.strategy.view(total_sectors);
  run.pacing = fl.pacing;
  run.horizon = config.run_for;
  run.first_disk = first_disk;
  run.out.resize(shard_disks);
  const std::size_t n = static_cast<std::size_t>(shard_disks);
  run.burst_begin.assign(n + 1, 0);
  run.sector_begin.assign(1, 0);

  const std::string prefix = fleet_prefix(config);
  if (ctx.timeline.enabled() && config.timeline.enabled) {
    run.timeline = &ctx.timeline;
    run.lse_series = ctx.timeline.series(
        prefix + "lse_sectors", obs::Timeline::SeriesKind::kCounter);
    run.detect_series = ctx.timeline.series(
        prefix + "detections", obs::Timeline::SeriesKind::kCounter);
  }

  const std::int64_t steps = run.schedule.steps_per_pass();
  for (std::size_t d = 0; d < n; ++d) {
    const std::int64_t global = first_disk + static_cast<std::int64_t>(d);
    const double u = member_utilization(fl, global);
    const SimTime step = effective_step(fl.pacing, u);
    run.out.utilization[d] = u;
    run.out.effective_step[d] = step;
    run.out.pass_duration[d] = steps * step;
    run.out.slowdown[d] = slowdown_model(u, fl.pacing.request_service, step);

    // Lazily materialized per-disk plan: a pure function of the GLOBAL
    // index, so shard boundaries never shift a disk's bursts.
    const fault::DiskFaultPlan plan = fault::build_disk_fault_plan(
        config.fault, global, total_sectors, config.run_for);
    for (const core::LseBurst& burst : plan.bursts) {
      run.burst_at.push_back(burst.occurred);
      run.sectors.insert(run.sectors.end(), burst.sectors.begin(),
                         burst.sectors.end());
      run.sector_begin.push_back(run.sectors.size());
    }
    run.burst_begin[d + 1] = run.burst_at.size();
  }

  // One persistent event per disk, re-armed through its burst list; the
  // shard's whole workload drains through one slab EventQueue in global
  // time order.
  run.cursor = run.burst_begin;
  run.cursor.pop_back();
  run.burst_event.assign(n, 0);
  ShardRun* rp = &run;
  for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(n); ++d) {
    if (run.burst_begin[d] == run.burst_begin[d + 1]) continue;
    run.burst_event[d] =
        run.sim.add_persistent(EventFn([rp, d] { rp->fire(d); }));
    run.sim.arm(run.burst_event[d], run.burst_at[run.burst_begin[d]]);
  }
  run.sim.run();

  for (std::size_t d = 0; d < n; ++d) {
    if (run.out.errors[d] > 0) {
      run.out.mlet_hours[d] = run.out.delay_sum_hours[d] /
                              static_cast<double>(run.out.errors[d]);
    }
    const SimTime pass = run.out.pass_duration[d];
    run.out.passes[d] = run.horizon / pass;
    run.out.progress[d] = static_cast<double>(run.horizon % pass) /
                          static_cast<double>(pass);
  }

  // Shard-side observability: integer counters only (exact, associative
  // adds) plus order-independent run-level digests -- everything else is
  // aggregated on the calling thread in disk order.
  std::int64_t shard_bursts = 0;
  std::int64_t shard_errors = 0;
  for (std::size_t d = 0; d < n; ++d) {
    shard_bursts += run.out.bursts[d];
    shard_errors += run.out.errors[d];
  }
  ctx.registry.counter(prefix + "disks") += shard_disks;
  ctx.registry.counter(prefix + "bursts") += shard_bursts;
  ctx.registry.counter(prefix + "errors") += shard_errors;
  if (run.timeline != nullptr) {
    obs::QuantileDigest& mlet = ctx.timeline.digest(prefix + "mlet_hours");
    obs::QuantileDigest& completion =
        ctx.timeline.digest(prefix + "completion_hours");
    obs::QuantileDigest& util = ctx.timeline.digest(prefix + "utilization");
    obs::QuantileDigest& slow = ctx.timeline.digest(prefix + "slowdown");
    for (std::size_t d = 0; d < n; ++d) {
      if (run.out.errors[d] > 0) mlet.observe(run.out.mlet_hours[d]);
      completion.observe(to_seconds(run.out.pass_duration[d]) / 3600.0);
      util.observe(run.out.utilization[d]);
      slow.observe(run.out.slowdown[d]);
    }
  }
  return std::move(run.out);
}

}  // namespace

MemberResult run_member(const exp::ScenarioConfig& config,
                        std::int64_t disk_index) {
  exp::validate_scenario(config);
  if (config.fleet.disks <= 0) {
    throw std::invalid_argument("run_member: config.fleet.disks must be > 0");
  }
  if (disk_index < 0 || disk_index >= config.fleet.disks) {
    throw std::invalid_argument(
        "run_member: disk_index " + std::to_string(disk_index) +
        " outside [0, " + std::to_string(config.fleet.disks) + ")");
  }
  const std::int64_t total_sectors = member_sectors(config);

  MemberResult r;
  r.utilization = member_utilization(config.fleet, disk_index);
  r.effective_step = effective_step(config.fleet.pacing, r.utilization);
  r.slowdown = slowdown_model(r.utilization,
                              config.fleet.pacing.request_service,
                              r.effective_step);

  const fault::DiskFaultPlan plan = fault::build_disk_fault_plan(
      config.fault, disk_index, total_sectors, config.run_for);

  // The genuinely independent per-disk path: a heap strategy object walked
  // by the strategy-based evaluate_mlet, paced at the member's stretched
  // step. The fleet's closed-form path must reproduce this bit-for-bit.
  std::unique_ptr<core::ScrubStrategy> strategy =
      config.scrubber.strategy.build(total_sectors);
  core::MletConfig pacing;
  pacing.request_service = r.effective_step;
  pacing.request_spacing = 0;
  pacing.scrub_on_detection = config.fleet.pacing.scrub_on_detection;
  r.mlet = core::evaluate_mlet(*strategy, total_sectors, plan.bursts, pacing);
  return r;
}

FleetResult run_fleet(const exp::ScenarioConfig& config,
                      const exp::SweepOptions& options) {
  exp::validate_scenario(config);
  if (config.fleet.disks <= 0) {
    throw std::invalid_argument(
        "run_fleet: config.fleet.disks must be > 0 (non-fleet configs run "
        "via exp::run_scenario)");
  }

  const std::int64_t disks = config.fleet.disks;
  const int shards = resolve_shards(disks, config.fleet.shards);

  // Balanced contiguous shard ranges; shard s's slice concatenates after
  // shard s-1's, so the merged arrays are in global disk order.
  const std::int64_t base = disks / shards;
  const std::int64_t extra = disks % shards;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;  // (first, n)
  ranges.reserve(static_cast<std::size_t>(shards));
  std::int64_t next_disk = 0;
  for (int s = 0; s < shards; ++s) {
    const std::int64_t count = base + (s < extra ? 1 : 0);
    ranges.emplace_back(next_disk, count);
    next_disk += count;
  }

  std::vector<FleetState> slices = exp::sweep<FleetState>(
      ranges.size(),
      [&config, &ranges](exp::TaskContext& ctx) {
        // ctx.seed is deliberately unused: member randomness derives from
        // the config seeds by global disk index, never from sweep wiring.
        const auto [first, count] = ranges[ctx.index];
        return run_shard(config, first, count, ctx);
      },
      options);

  FleetResult result;
  result.label = config.label;
  result.disks = disks;
  result.shards = shards;
  result.horizon = config.run_for;
  result.state = std::move(slices.front());
  for (std::size_t s = 1; s < slices.size(); ++s) {
    result.state.append(slices[s]);
  }

  // Fleet aggregates: one deterministic pass over the concatenated arrays
  // in disk order on this thread -- float accumulation order is fixed no
  // matter how the shards ran.
  const FleetState& st = result.state;
  double delay_sum = 0.0;
  double slowdown_sum = 0.0;
  for (std::size_t d = 0; d < st.utilization.size(); ++d) {
    result.total_bursts += st.bursts[d];
    result.total_errors += st.errors[d];
    delay_sum += st.delay_sum_hours[d];
    slowdown_sum += st.slowdown[d];
    result.worst_mlet_hours =
        std::max(result.worst_mlet_hours, st.worst_hours[d]);
    if (st.errors[d] > 0) result.mlet_hours.observe(st.mlet_hours[d]);
    result.completion_hours.observe(to_seconds(st.pass_duration[d]) / 3600.0);
    result.utilization.observe(st.utilization[d]);
    result.slowdown.observe(st.slowdown[d]);
  }
  if (result.total_errors > 0) {
    result.fleet_mlet_hours =
        delay_sum / static_cast<double>(result.total_errors);
  }
  result.mean_slowdown = slowdown_sum / static_cast<double>(disks);
  return result;
}

void FleetResult::export_to(obs::Registry& registry,
                            const std::string& prefix) const {
  const std::string p = prefix + ".fleet.";
  registry.counter(p + "disks") += disks;
  registry.counter(p + "bursts") += total_bursts;
  registry.counter(p + "errors") += total_errors;
  // Deliberately no shard/worker wiring in the export: snapshots must be
  // byte-identical however the fleet was partitioned.
  registry.gauge(p + "mlet_hours").set(fleet_mlet_hours);
  registry.gauge(p + "worst_mlet_hours").set(worst_mlet_hours);
  registry.gauge(p + "mean_slowdown").set(mean_slowdown);
  registry.gauge(p + "mlet_hours_p50").set(mlet_hours.p50());
  registry.gauge(p + "mlet_hours_p95").set(mlet_hours.p95());
  registry.gauge(p + "mlet_hours_p99").set(mlet_hours.p99());
  registry.gauge(p + "completion_hours_p50").set(completion_hours.p50());
  registry.gauge(p + "completion_hours_p95").set(completion_hours.p95());
  registry.gauge(p + "completion_hours_p99").set(completion_hours.p99());
  registry.gauge(p + "utilization_mean").set(utilization.mean());
  registry.gauge(p + "slowdown_p99").set(slowdown.p99());
}

}  // namespace pscrub::fleet
