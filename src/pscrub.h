// Umbrella header: the public API of the practical-scrubbing library.
//
// Layered bottom-up:
//   sim       -- discrete-event engine, deterministic RNG
//   obs       -- observability: metric registry, latency histograms,
//                sim-time Chrome-trace event tracer (PSCRUB_TRACE /
//                PSCRUB_METRICS)
//   disk      -- mechanical disk model + drive profiles
//   block     -- request queue, NOOP/CFQ schedulers, soft barriers
//   trace     -- SNIA-style traces, synthetic generator, catalog
//   stats     -- ANOVA, AR(p)/AIC, autocorrelation, residual life
//   workload  -- synthetic foreground workloads, trace replay
//   core      -- scrubbers, idle policies, policy simulator, optimizer,
//                LSE/MLET model (the paper's contribution)
//   raid      -- striped array with rebuild and scrub-repair (the data-
//                loss scenario that motivates scrubbing)
//   fault     -- deterministic fault plans (LSE bursts, transient errors,
//                device failures) and the injector that drives them into
//                live disks
//   exp       -- scenario engine (declarative stack construction) and the
//                deterministic parallel sweep runner
//   fleet     -- fleet-scale population runs: struct-of-arrays per-disk
//                state, one sharded event queue per sub-fleet, results
//                merged deterministically (bit-identical at any shard or
//                worker count)
//   daemon    -- pscrubd: crash-safe scrub control plane (operator
//                command protocol, token-bucket throttling, versioned
//                checkpoint/resume with byte-identical replay)
#pragma once

#include "block/block_layer.h"
#include "block/cfq_scheduler.h"
#include "block/deadline_scheduler.h"
#include "block/noop_scheduler.h"
#include "core/adaptive.h"
#include "core/cost_model.h"
#include "core/idle_policy.h"
#include "core/lse.h"
#include "core/optimizer.h"
#include "core/policy_sim.h"
#include "core/scrub_sizer.h"
#include "core/scrub_strategy.h"
#include "core/scrubber.h"
#include "core/spin_down.h"
#include "daemon/checkpoint.h"
#include "daemon/daemon.h"
#include "disk/cache.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fleet/fleet.h"
#include "disk/disk_model.h"
#include "disk/geometry.h"
#include "disk/profile.h"
#include "obs/env.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace_event.h"
#include "raid/array.h"
#include "raid/layout.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/acd_model.h"
#include "stats/anova.h"
#include "stats/ar_model.h"
#include "stats/autocorrelation.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/residual_life.h"
#include "trace/catalog.h"
#include "trace/idle.h"
#include "trace/io.h"
#include "trace/record.h"
#include "trace/spec.h"
#include "trace/synthetic.h"
#include "workload/metrics.h"
#include "workload/synthetic_workload.h"
#include "workload/trace_replay.h"
