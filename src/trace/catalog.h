// Catalog of the SNIA traces the paper studies (Table I, Figs 8-9, 14).
//
// Each entry is a TraceSpec calibrated to the characteristics the paper
// reports: Table I request counts and roles, Table II idle-interval means
// and CoVs, HP Cello's nightly-backup spikes, MSR's varied peak hours, and
// TPC-C's memoryless arrivals.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "trace/spec.h"

namespace pscrub::trace {

/// The ten disks of Table I.
std::vector<TraceSpec> table1_specs();

/// The busiest-63 set of Fig 9 (includes the Table I disks).
std::vector<TraceSpec> busiest63_specs();

/// Lookup by the paper's disk label (e.g. "MSRsrc11", "HPc6t8d0",
/// "TPCdisk66", "MSRusr2").
std::optional<TraceSpec> spec_by_name(std::string_view name);

}  // namespace pscrub::trace
