// Idle-interval extraction.
//
// An idle interval is the time between the completion of the last queued
// foreground request and the next arrival (the quantity analyzed throughout
// Sec V-A). Extraction sweeps the trace through a single-server FCFS queue
// with a caller-supplied service-time model, so closely spaced requests in
// a burst produce no idle time.
#pragma once

#include <functional>
#include <vector>

#include "trace/record.h"

namespace pscrub::trace {

/// Service time for one request (e.g. from a DiskProfile estimate).
using ServiceModel = std::function<SimTime(const TraceRecord&)>;

struct IdleExtraction {
  /// Idle-interval durations, in seconds, in time order.
  std::vector<double> idle_seconds;
  SimTime total_idle = 0;
  SimTime total_busy = 0;
  /// Completion time of the last request.
  SimTime end_of_activity = 0;
};

/// Streaming form of the extraction: feed records in arrival order (e.g.
/// straight from SyntheticGenerator::generate) without materializing a
/// trace. extract_idle_intervals() is the materialized-trace adapter over
/// this accumulator, so there is exactly one implementation of the
/// single-server idle sweep.
class IdleAccumulator {
 public:
  explicit IdleAccumulator(ServiceModel service)
      : service_(std::move(service)) {}

  void add(const TraceRecord& r);

  /// Finalizes end_of_activity and returns the extraction; the accumulator
  /// is spent afterwards.
  IdleExtraction finish();

 private:
  ServiceModel service_;
  IdleExtraction out_;
  SimTime busy_until_ = 0;
};

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      const ServiceModel& service);

/// Convenience: constant service time per request.
IdleExtraction extract_idle_intervals(const Trace& trace,
                                      SimTime fixed_service);

}  // namespace pscrub::trace
