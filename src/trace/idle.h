// Idle-interval extraction.
//
// An idle interval is the time between the completion of the last queued
// foreground request and the next arrival (the quantity analyzed throughout
// Sec V-A). Extraction sweeps the trace through a single-server FCFS queue
// with a caller-supplied service-time model, so closely spaced requests in
// a burst produce no idle time.
#pragma once

#include <functional>
#include <vector>

#include "trace/record.h"

namespace pscrub::trace {

/// Service time for one request (e.g. from a DiskProfile estimate).
using ServiceModel = std::function<SimTime(const TraceRecord&)>;

struct IdleExtraction {
  /// Idle-interval durations, in seconds, in time order.
  std::vector<double> idle_seconds;
  SimTime total_idle = 0;
  SimTime total_busy = 0;
  /// Completion time of the last request.
  SimTime end_of_activity = 0;
};

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      const ServiceModel& service);

/// Convenience: constant service time per request.
IdleExtraction extract_idle_intervals(const Trace& trace,
                                      SimTime fixed_service);

}  // namespace pscrub::trace
