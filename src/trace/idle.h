// Idle-interval extraction.
//
// An idle interval is the time between the completion of the last queued
// foreground request and the next arrival (the quantity analyzed throughout
// Sec V-A). Extraction sweeps the trace through a single-server FCFS queue
// with a caller-supplied service-time model, so closely spaced requests in
// a burst produce no idle time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/record.h"

namespace pscrub::trace {

/// Service time for one request (e.g. from a DiskProfile estimate).
using ServiceModel = std::function<SimTime(const TraceRecord&)>;

struct IdleExtraction {
  /// Idle-interval durations, in seconds, in time order.
  std::vector<double> idle_seconds;
  SimTime total_idle = 0;
  SimTime total_busy = 0;
  /// Completion time of the last request.
  SimTime end_of_activity = 0;
};

/// Exact idle decomposition of a trace under one service model: the same
/// single-server sweep as IdleExtraction, but kept in integer SimTime and
/// annotated with how many requests each busy segment holds. This is the
/// raw input of core::IdleDecomposition -- everything the batched Waiting
/// grid evaluator needs to reproduce run_policy_sim_reference bit for bit
/// without re-walking the records.
struct IdleGapStream {
  /// Baseline idle-gap durations (> 0), in time order.
  std::vector<SimTime> gaps;
  /// Requests in the busy segment that follows gaps[i] (up to, not
  /// including, the request that opens gap i+1). Always >= 1.
  std::vector<std::int64_t> segment_records;
  /// Requests before the first gap (the leading busy segment).
  std::int64_t leading_records = 0;
  std::int64_t total_records = 0;
  /// Completion time of the last request (== IdleExtraction's).
  SimTime end_of_activity = 0;
};

/// Streaming form of the extraction: feed records in arrival order (e.g.
/// straight from SyntheticGenerator::generate) without materializing a
/// trace. extract_idle_intervals() is the materialized-trace adapter over
/// this accumulator, so there is exactly one implementation of the
/// single-server idle sweep.
class IdleAccumulator {
 public:
  struct Options {
    /// Also capture the exact IdleGapStream (take_gap_stream()). Off by
    /// default: the heavy streaming analyses only need idle_seconds.
    bool capture_gaps = false;
    /// Initial busy frontier. Non-zero decomposes a later slice of a
    /// timeline whose earlier slice completed at this instant, so slice
    /// decompositions can be merged (core::IdleDecomposition::append).
    SimTime busy_until = 0;
  };

  explicit IdleAccumulator(ServiceModel service)
      : IdleAccumulator(std::move(service), Options{}) {}
  IdleAccumulator(ServiceModel service, const Options& options)
      : service_(std::move(service)), capture_gaps_(options.capture_gaps),
        busy_until_(options.busy_until) {}

  void add(const TraceRecord& r);

  /// Finalizes end_of_activity and returns the extraction; the accumulator
  /// is spent afterwards (take_gap_stream() remains valid).
  IdleExtraction finish();

  /// The exact gap stream (Options::capture_gaps only); call at most once,
  /// after the last add().
  IdleGapStream take_gap_stream();

 private:
  ServiceModel service_;
  IdleExtraction out_;
  IdleGapStream stream_;
  bool capture_gaps_ = false;
  SimTime busy_until_ = 0;
};

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      const ServiceModel& service);

/// Convenience: constant service time per request.
IdleExtraction extract_idle_intervals(const Trace& trace,
                                      SimTime fixed_service);

}  // namespace pscrub::trace
