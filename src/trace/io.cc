#include "trace/io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace pscrub::trace {

void write_csv(const Trace& trace, std::ostream& os) {
  os << "arrival_ns,lbn,sectors,op\n";
  for (const TraceRecord& r : trace.records) {
    os << r.arrival << ',' << r.lbn << ',' << r.sectors << ','
       << (r.is_write ? 'W' : 'R') << '\n';
  }
}

void write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_csv(trace, os);
}

namespace {

std::int64_t parse_int(std::string_view field, int line_no) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw std::runtime_error("bad integer field at line " +
                             std::to_string(line_no));
  }
  return value;
}

}  // namespace

Trace read_csv(std::istream& is, std::string name) {
  Trace out;
  out.name = std::move(name);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("arrival_ns", 0) == 0) continue;  // header
    std::string_view rest = line;
    TraceRecord r;
    for (int field = 0; field < 4; ++field) {
      const std::size_t comma = rest.find(',');
      const std::string_view tok =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      if (tok.empty()) {
        throw std::runtime_error("missing field at line " +
                                 std::to_string(line_no));
      }
      switch (field) {
        case 0: r.arrival = parse_int(tok, line_no); break;
        case 1: r.lbn = parse_int(tok, line_no); break;
        case 2:
          r.sectors = static_cast<std::int32_t>(parse_int(tok, line_no));
          break;
        case 3:
          if (tok == "R") {
            r.is_write = false;
          } else if (tok == "W") {
            r.is_write = true;
          } else {
            throw std::runtime_error("bad op at line " +
                                     std::to_string(line_no));
          }
          break;
      }
      if (comma == std::string_view::npos) {
        if (field != 3) {
          throw std::runtime_error("too few fields at line " +
                                   std::to_string(line_no));
        }
        rest = {};
      } else {
        rest = rest.substr(comma + 1);
      }
    }
    out.records.push_back(r);
    if (r.arrival > out.duration) out.duration = r.arrival;
  }
  return out;
}

Trace read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_csv(is, path);
}

}  // namespace pscrub::trace
