// Block I/O trace records, SNIA-style (Table I of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "disk/command.h"
#include "sim/time.h"

namespace pscrub::trace {

struct TraceRecord {
  SimTime arrival = 0;       // ns since trace start
  disk::Lbn lbn = 0;         // 512-byte sectors
  std::int32_t sectors = 0;  // request length
  bool is_write = false;

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(sectors) * disk::kSectorBytes;
  }
};

struct Trace {
  std::string name;
  SimTime duration = 0;  // observation window (>= last arrival)
  std::vector<TraceRecord> records;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }

  /// Requests per hour over the observation window (Fig 8's series).
  std::vector<double> hourly_counts() const;

  /// Inter-arrival gaps in seconds (records.size() - 1 values).
  std::vector<double> interarrival_seconds() const;
};

}  // namespace pscrub::trace
