// Synthetic trace specification.
//
// The SNIA traces the paper replays (HP Cello 1999, MSR Cambridge 2008,
// MS TPC-C 2009) are not redistributable, so we regenerate statistically
// equivalent workloads. A TraceSpec captures the properties the paper's
// analysis depends on (Sec V-A): total volume (Table I), diurnal
// periodicity with daily spikes (Figs 8-9), autocorrelated arrivals, and
// heavy-tailed idle intervals with the Table II coefficients of variation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace pscrub::trace {

enum class ArrivalModel : std::uint8_t {
  /// Two-state renewal process: geometric bursts of closely spaced
  /// requests separated by heavy-tailed, diurnally modulated idle gaps.
  /// Matches the disk traces (high CoV, decreasing hazard).
  kBursty,
  /// Gamma-renewal arrivals (shape ~1.35 gives the TPC-C CoV of ~0.86):
  /// effectively memoryless, the paper's counter-example workload.
  kMemoryless,
};

struct TraceSpec {
  std::string name;
  std::string collection;   // "MSR Cambridge", "HP Cello", "MS TPC-C"
  std::string description;  // Table I's role, e.g. "Source Control"
  std::uint64_t seed = 1;

  SimTime duration = kWeek;
  /// Target total number of requests over `duration` (Table I). The
  /// generator calibrates idle-gap means to land near this.
  std::int64_t target_requests = 1'000'000;

  ArrivalModel model = ArrivalModel::kBursty;

  // ---- Burst structure (kBursty) ----
  double burst_len_mean = 80.0;          // geometric mean burst length
  SimTime burst_gap_mean = 2 * kMillisecond;  // exp. gap within a burst

  // ---- Idle gaps between bursts (kBursty) ----
  /// Lognormal shape of the idle gap; sigma ~2.1 -> CoV ~9,
  /// ~2.5 -> ~20, ~3.0 -> ~90 (Table II's range).
  double idle_sigma = 2.4;
  /// Extra Pareto tail mixed in with this probability (alpha below);
  /// pushes CoV toward the proj2-style 200 and strengthens the
  /// decreasing-hazard effect.
  double pareto_tail_weight = 0.0;
  double pareto_alpha = 1.6;
  /// AR(1) coefficient on log idle gaps: successive idle intervals are
  /// correlated (Sec V-A found 44/63 traces strongly autocorrelated).
  double idle_log_ar1 = 0.5;

  // ---- Periodicity (Figs 8-9) ----
  /// 0 = no periodic component; otherwise the dominant period.
  SimTime period = kDay;
  /// Peak hours within the period (e.g. {2} for a nightly backup spike)
  /// and the activity multiplier at the peak.
  std::vector<double> spike_hours = {2.0};
  double spike_magnitude = 8.0;
  /// Baseline day/night swing (1 = none).
  double diurnal_swing = 2.0;

  // ---- Gamma renewal (kMemoryless) ----
  double gamma_shape = 1.35;

  // ---- Request geometry ----
  std::int64_t disk_sectors = 585'937'500;  // ~300 GB
  double read_fraction = 0.7;
  /// Probability the next request in a burst continues sequentially.
  double sequential_prob = 0.55;
  /// Request size distribution: log-uniform between these bounds, rounded
  /// to 4 KiB multiples.
  std::int64_t min_request_bytes = 4 * 1024;
  std::int64_t max_request_bytes = 64 * 1024;
};

}  // namespace pscrub::trace
