#include "trace/catalog.h"

#include <array>
#include <cstdint>
#include <string>

namespace pscrub::trace {

namespace {

std::uint64_t name_seed(std::string_view name) {
  // FNV-1a, stable across platforms so catalog traces are reproducible.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

TraceSpec base_msr(std::string name, std::string role) {
  TraceSpec s;
  s.collection = "MSR Cambridge";
  s.description = std::move(role);
  s.seed = name_seed(name);
  s.name = std::move(name);
  s.duration = kWeek;
  s.period = kDay;
  // MSR peaks on different hours for different disks, some days with
  // smaller or no peaks: moderate spike at a per-disk hour.
  s.spike_hours = {static_cast<double>(3 + (s.seed % 18))};
  s.spike_magnitude = 5.0;
  s.diurnal_swing = 2.2;
  s.read_fraction = 0.65;
  s.sequential_prob = 0.75;
  return s;
}

TraceSpec base_hp(std::string name, std::string role) {
  TraceSpec s;
  s.collection = "HP Cello";
  s.description = std::move(role);
  s.seed = name_seed(name);
  s.name = std::move(name);
  s.duration = kWeek;
  s.period = kDay;
  // Cello's consistent daily spikes are attributed to nightly backups.
  s.spike_hours = {1.0};
  s.spike_magnitude = 12.0;
  s.diurnal_swing = 2.0;
  s.read_fraction = 0.6;
  s.sequential_prob = 0.75;
  return s;
}

TraceSpec base_tpcc(std::string name) {
  TraceSpec s;
  s.collection = "MS TPC-C";
  s.description = "TPC-C run";
  s.seed = name_seed(name);
  s.name = std::move(name);
  // A TPC-C *run*, not a week: ~513k requests at ~1.4 ms mean idle.
  s.duration = 720 * kSecond;
  s.model = ArrivalModel::kMemoryless;
  s.gamma_shape = 1.35;  // CoV ~0.86, Table II
  s.period = 0;
  s.spike_hours.clear();
  s.read_fraction = 0.55;
  s.sequential_prob = 0.1;
  return s;
}

}  // namespace

std::vector<TraceSpec> table1_specs() {
  std::vector<TraceSpec> out;

  {  // MSRsrc11: Source Control; idle mean ~0.46 s, CoV ~21.7.
    TraceSpec s = base_msr("MSRsrc11", "Source Control");
    s.target_requests = 45'746'222;
    s.burst_len_mean = 35.0;
    s.burst_gap_mean = from_seconds(1.5e-3);
    s.idle_sigma = 2.85;
    out.push_back(s);
  }
  {  // MSRusr1: Home dirs; idle mean ~0.10 s, CoV ~8.7.
    TraceSpec s = base_msr("MSRusr1", "Home dirs");
    s.target_requests = 45'283'980;
    s.burst_len_mean = 10.0;
    s.burst_gap_mean = from_seconds(1.0e-3);
    s.idle_sigma = 2.35;
    out.push_back(s);
  }
  {  // MSRproj2: Project dirs; idle mean ~0.14 s, CoV ~200 (extreme tail).
    TraceSpec s = base_msr("MSRproj2", "Project dirs");
    s.target_requests = 29'266'482;
    s.burst_len_mean = 8.0;
    s.burst_gap_mean = from_seconds(1.0e-3);
    s.idle_sigma = 3.0;
    s.pareto_tail_weight = 0.18;
    s.pareto_alpha = 1.06;
    out.push_back(s);
  }
  {  // MSRprn1: Print server; idle mean ~0.23 s, CoV ~12.6.
    TraceSpec s = base_msr("MSRprn1", "Print server");
    s.target_requests = 11'233'411;
    s.burst_len_mean = 5.0;
    s.burst_gap_mean = from_seconds(2.0e-3);
    s.idle_sigma = 2.5;
    out.push_back(s);
  }

  {  // HPc6t8d0: News Disk; many short idle intervals (Fig 14's worst
     // case); idle mean ~0.15 s, CoV ~13.8.
    TraceSpec s = base_hp("HPc6t8d0", "News Disk");
    s.target_requests = 9'529'855;
    s.burst_len_mean = 3.0;
    s.burst_gap_mean = from_seconds(1.5e-3);
    s.idle_sigma = 2.55;
    out.push_back(s);
  }
  {  // HPc6t5d1: Project files; idle mean ~0.45 s, CoV ~29.8.
    TraceSpec s = base_hp("HPc6t5d1", "Project files");
    s.target_requests = 4'588'778;
    s.burst_len_mean = 4.0;
    s.burst_gap_mean = from_seconds(2.0e-3);
    s.idle_sigma = 2.95;
    out.push_back(s);
  }
  {  // HPc6t5d0: Home dirs; idle mean ~0.43 s, CoV ~9.1.
    TraceSpec s = base_hp("HPc6t5d0", "Home dirs");
    s.target_requests = 3'365'078;
    s.burst_len_mean = 3.0;
    s.burst_gap_mean = from_seconds(2.0e-3);
    s.idle_sigma = 2.3;
    out.push_back(s);
  }
  {  // HPc3t3d0: Root & Swap; idle mean ~0.46 s, CoV ~8.2.
    TraceSpec s = base_hp("HPc3t3d0", "Root & Swap");
    s.target_requests = 2'742'326;
    s.burst_len_mean = 2.5;
    s.burst_gap_mean = from_seconds(2.0e-3);
    s.idle_sigma = 2.25;
    out.push_back(s);
  }

  {  // TPC-C runs: memoryless, idle mean ~1.4 ms, CoV ~0.86.
    TraceSpec s = base_tpcc("TPCdisk66");
    s.target_requests = 513'038;
    out.push_back(s);
    TraceSpec s2 = base_tpcc("TPCdisk88");
    s2.target_requests = 513'844;
    out.push_back(s2);
  }

  return out;
}

namespace {

// Fig 9's x-axis, in the paper's order (left = weakest periodicity).
constexpr std::array<std::string_view, 63> kBusiest63 = {
    "MSRwdev3",  "MSRwdev1",  "MSRrsrch1", "HPc7t5d0",  "HPc1t1d0",
    "MSRweb3",   "HPc6t6d0",  "HPc6t3d0",  "HPc2t4d0",  "HPc7t3d0",
    "HPc0t1d0",  "HPc2t3d0",  "HPc6t2d0",  "MSRweb1",   "HPc2t2d0",
    "MSRwdev2",  "MSRrsrch2", "HPc0t5d0",  "HPc1t2d0",  "HPc3t5d0",
    "HPc0t2d0",  "HPc6t2d1",  "MSRhm1",    "MSRsrc21",  "MSRwdev0",
    "MSRsrc22",  "HPc2t1d0",  "MSRmds0",   "MSRrsrch0", "MSProd0",
    "MSRsrc20",  "MSRmds1",   "HPc1t3d0",  "MSRts0",    "MSRsrc12",
    "HPc1t5d0",  "MSRweb0",   "MSRstg0",   "MSRstg1",   "MSRusr0",
    "MSRproj3",  "HPc6t10d0", "HPc3t3d0",  "HPc0t3d0",  "HPc6t5d0",
    "HPc3t4d0",  "HPc6t2d2",  "MSRhm0",    "MSRproj0",  "HPc6t5d1",
    "MSRweb2",   "MSRprn0",   "MSRproj4",  "HPc6t8d0",  "MSRusr2",
    "MSRprn1",   "MSRprxy0",  "MSRproj1",  "MSRproj2",  "MSRsrc10",
    "MSRusr1",   "MSRsrc11",  "MSRprxy1",
};

TraceSpec synthesize_secondary(std::string_view name, std::size_t rank) {
  const bool is_hp = name.rfind("HP", 0) == 0;
  TraceSpec s = is_hp ? base_hp(std::string(name), "secondary")
                      : base_msr(std::string(name), "secondary");
  // Volume grows along Fig 9's axis (the busiest disks sit at the right).
  s.target_requests =
      200'000 + static_cast<std::int64_t>(rank) * 30'000 +
      static_cast<std::int64_t>(s.seed % 100'000);
  s.burst_len_mean = 3.0 + static_cast<double>(s.seed % 12);
  s.idle_sigma = 2.0 + 0.012 * static_cast<double>(s.seed % 80);
  // The five leftmost disks show no detectable period in Fig 9.
  if (rank < 5) {
    s.period = 0;
    s.spike_hours.clear();
    s.diurnal_swing = 1.0;
    s.spike_magnitude = 0.0;
  } else if (rank < 8) {
    // A few disks lock to a 12-hour cycle.
    s.period = 12 * kHour;
    s.spike_hours = {static_cast<double>(1 + (s.seed % 10))};
  }
  return s;
}

}  // namespace

std::vector<TraceSpec> busiest63_specs() {
  std::vector<TraceSpec> out;
  out.reserve(kBusiest63.size());
  for (std::size_t i = 0; i < kBusiest63.size(); ++i) {
    const std::string_view name = kBusiest63[i];
    if (auto known = spec_by_name(name); known && known->description != "secondary") {
      out.push_back(std::move(*known));
    } else {
      out.push_back(synthesize_secondary(name, i));
    }
  }
  return out;
}

std::optional<TraceSpec> spec_by_name(std::string_view name) {
  for (TraceSpec& s : table1_specs()) {
    if (s.name == name) return std::move(s);
  }
  if (name == "MSRusr2") {
    // Fig 14's representative disk (not in Table I): moderately busy with
    // comfortably long idle intervals.
    TraceSpec s = base_msr("MSRusr2", "Home dirs (2)");
    s.target_requests = 10'500'000;
    s.burst_len_mean = 12.0;
    s.burst_gap_mean = from_seconds(1.5e-3);
    s.idle_sigma = 2.4;
    return s;
  }
  for (std::size_t i = 0; i < kBusiest63.size(); ++i) {
    if (kBusiest63[i] == name) {
      return synthesize_secondary(name, i);
    }
  }
  return std::nullopt;
}

}  // namespace pscrub::trace
