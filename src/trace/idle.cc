#include "trace/idle.h"

#include <algorithm>

namespace pscrub::trace {

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      const ServiceModel& service) {
  IdleExtraction out;
  SimTime busy_until = 0;
  out.idle_seconds.reserve(trace.records.size() / 4);
  for (const TraceRecord& r : trace.records) {
    if (r.arrival > busy_until) {
      const SimTime idle = r.arrival - busy_until;
      out.idle_seconds.push_back(to_seconds(idle));
      out.total_idle += idle;
    }
    const SimTime start = std::max(r.arrival, busy_until);
    const SimTime svc = service(r);
    busy_until = start + svc;
    out.total_busy += svc;
  }
  out.end_of_activity = busy_until;
  return out;
}

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      SimTime fixed_service) {
  return extract_idle_intervals(
      trace, [fixed_service](const TraceRecord&) { return fixed_service; });
}

}  // namespace pscrub::trace
