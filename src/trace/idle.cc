#include "trace/idle.h"

#include <algorithm>
#include <utility>

namespace pscrub::trace {

void IdleAccumulator::add(const TraceRecord& r) {
  if (r.arrival > busy_until_) {
    const SimTime idle = r.arrival - busy_until_;
    out_.idle_seconds.push_back(to_seconds(idle));
    out_.total_idle += idle;
    if (capture_gaps_) {
      stream_.gaps.push_back(idle);
      stream_.segment_records.push_back(0);
    }
  }
  if (capture_gaps_) {
    ++stream_.total_records;
    if (stream_.segment_records.empty()) {
      ++stream_.leading_records;
    } else {
      ++stream_.segment_records.back();
    }
  }
  const SimTime start = std::max(r.arrival, busy_until_);
  const SimTime svc = service_(r);
  busy_until_ = start + svc;
  out_.total_busy += svc;
}

IdleExtraction IdleAccumulator::finish() {
  out_.end_of_activity = busy_until_;
  return std::move(out_);
}

IdleGapStream IdleAccumulator::take_gap_stream() {
  stream_.end_of_activity = busy_until_;
  return std::move(stream_);
}

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      const ServiceModel& service) {
  IdleAccumulator acc(service);
  for (const TraceRecord& r : trace.records) acc.add(r);
  return acc.finish();
}

IdleExtraction extract_idle_intervals(const Trace& trace,
                                      SimTime fixed_service) {
  return extract_idle_intervals(
      trace, [fixed_service](const TraceRecord&) { return fixed_service; });
}

}  // namespace pscrub::trace
