#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pscrub::trace {

SyntheticGenerator::SyntheticGenerator(TraceSpec spec)
    : spec_(std::move(spec)) {
  calibrate();
}

double SyntheticGenerator::rate_multiplier(SimTime t) const {
  if (spec_.period <= 0) return 1.0;
  const double period_h = to_seconds(spec_.period) / 3600.0;
  const double hour_in_period =
      std::fmod(to_seconds(t) / 3600.0, period_h);
  // Smooth baseline swing (trough at period start).
  double rate = 1.0;
  if (spec_.diurnal_swing > 1.0) {
    const double phase = 2.0 * M_PI * hour_in_period / period_h;
    const double mid = (spec_.diurnal_swing + 1.0) / 2.0;
    const double amp = (spec_.diurnal_swing - 1.0) / 2.0;
    rate = mid - amp * std::cos(phase);
  }
  // Spikes: Gaussian kernels around the configured peak hours.
  for (double spike_h : spec_.spike_hours) {
    double d = std::fabs(hour_in_period - spike_h);
    d = std::min(d, period_h - d);  // circular distance
    constexpr double kWidthHours = 0.6;
    rate += spec_.spike_magnitude *
            std::exp(-(d * d) / (2.0 * kWidthHours * kWidthHours));
  }
  return std::max(rate, kMinRate);
}

void SyntheticGenerator::calibrate() {
  // Sample 1/rate over one period. Used both for diagnostics and for the
  // volume calibration below.
  constexpr int kSamples = 2048;
  std::vector<double> inv_rate(kSamples, 1.0);
  if (spec_.period > 0) {
    double acc = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const SimTime t = spec_.period * i / kSamples;
      inv_rate[static_cast<std::size_t>(i)] = 1.0 / rate_multiplier(t);
      acc += inv_rate[static_cast<std::size_t>(i)];
    }
    mean_inverse_rate_ = acc / kSamples;
  } else {
    mean_inverse_rate_ = 1.0;
  }

  if (spec_.model == ArrivalModel::kBursty) {
    // Expected requests for a base idle gap b:
    //   R(b) = burst_len * integral dt / (burst_time + b / rate(t))
    // Cycles concentrate in high-rate periods, so R is a Jensen-style
    // harmonic mean, not the naive duration / mean-cycle formula; solve
    // R(b) = target by bisection (R is monotone decreasing in b).
    const double duration_s = to_seconds(spec_.duration);
    const double burst_s =
        spec_.burst_len_mean * to_seconds(spec_.burst_gap_mean);
    const double target =
        std::max(1.0, static_cast<double>(spec_.target_requests));
    const auto expected_requests = [&](double b) {
      double acc = 0.0;
      for (double ir : inv_rate) {
        acc += 1.0 / (burst_s + b * ir);
      }
      return spec_.burst_len_mean * duration_s * acc /
             static_cast<double>(inv_rate.size());
    };
    double lo = 1e-6;
    double hi = duration_s;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (expected_requests(mid) > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    base_idle_gap_s_ = std::max(0.5 * (lo + hi), 1e-3);

    // Finite-sample correction: with very heavy tails (lognormal sigma
    // ~3, Pareto alpha ~1) the realized volume of one week is dominated
    // by a handful of giant gaps and deviates substantially from the
    // expectation. Because arrival-structure draws come from their own
    // RNG stream (see generate()), we can dry-run the *exact* arrival
    // realization -- no per-request work -- and nudge the base gap until
    // the realized count matches the target.
    for (int pass = 0; pass < 4; ++pass) {
      const std::int64_t produced = dry_run_arrivals();
      if (produced <= 0) break;
      const double ratio =
          static_cast<double>(produced) / target;
      if (std::abs(ratio - 1.0) < 0.02) break;
      base_idle_gap_s_ = std::max(base_idle_gap_s_ * ratio, 1e-3);
    }
  }
}

std::int64_t SyntheticGenerator::dry_run_arrivals() {
  // Mirrors generate()'s arrival-stream draw order exactly; returns the
  // number of requests the real run will produce.
  Rng arrival(spec_.seed);
  const double sigma = spec_.idle_sigma;
  const double rho = std::clamp(spec_.idle_log_ar1, 0.0, 0.99);
  double z = arrival.normal(0.0, sigma);
  std::int64_t produced = 0;
  SimTime t = 0;
  while (t < spec_.duration) {
    const double idle_mean_s = base_idle_gap_s_ / rate_multiplier(t);
    double gap_s;
    if (spec_.pareto_tail_weight > 0.0 &&
        arrival.bernoulli(spec_.pareto_tail_weight)) {
      const double alpha = std::max(spec_.pareto_alpha, 1.05);
      gap_s = arrival.pareto(idle_mean_s * (alpha - 1.0) / alpha, alpha);
    } else {
      z = rho * z + std::sqrt(1.0 - rho * rho) * arrival.normal(0.0, sigma);
      gap_s = std::exp(std::log(idle_mean_s) - sigma * sigma / 2.0 + z);
    }
    t += from_seconds(gap_s);
    if (t >= spec_.duration) break;
    const double p_exit = 1.0 / std::max(spec_.burst_len_mean, 1.0);
    while (t < spec_.duration) {
      ++produced;
      if (arrival.bernoulli(p_exit)) break;
      t += from_seconds(
          arrival.exponential(to_seconds(spec_.burst_gap_mean)));
    }
  }
  return produced;
}

TraceRecord SyntheticGenerator::make_request(SimTime at, bool sequential,
                                             Rng& rng) {
  TraceRecord r;
  r.arrival = at;
  // Log-uniform size in [min, max], rounded to 4 KiB.
  const double lmin = std::log(static_cast<double>(spec_.min_request_bytes));
  const double lmax = std::log(static_cast<double>(spec_.max_request_bytes));
  const auto bytes = static_cast<std::int64_t>(
      std::exp(rng.uniform(lmin, lmax)));
  const std::int64_t rounded =
      std::max<std::int64_t>(4096, (bytes / 4096) * 4096);
  r.sectors = static_cast<std::int32_t>(rounded / disk::kSectorBytes);
  if (sequential && cursor_ + r.sectors < spec_.disk_sectors) {
    r.lbn = cursor_;
  } else {
    r.lbn = rng.uniform_int(0, spec_.disk_sectors - r.sectors - 1);
  }
  cursor_ = r.lbn + r.sectors;
  r.is_write = !rng.bernoulli(spec_.read_fraction);
  return r;
}

std::int64_t SyntheticGenerator::generate(
    const std::function<void(const TraceRecord&)>& sink) {
  // Two independent streams: `arrival` decides the timing structure
  // (gaps, burst lengths) and `request` the per-request details (size,
  // location, direction). The split lets calibrate() dry-run the exact
  // arrival realization without paying for request generation.
  Rng arrival(spec_.seed);
  Rng request(spec_.seed ^ 0xd1b54a32d192ed03ULL);
  cursor_ = request.uniform_int(0, spec_.disk_sectors / 2);
  std::int64_t produced = 0;
  SimTime t = 0;

  if (spec_.model == ArrivalModel::kMemoryless) {
    const double mean_gap_s =
        to_seconds(spec_.duration) /
        std::max<double>(1.0, static_cast<double>(spec_.target_requests));
    const double shape = std::max(spec_.gamma_shape, 0.05);
    std::gamma_distribution<double> gamma(shape, mean_gap_s / shape);
    while (true) {
      t += from_seconds(gamma(arrival.engine()));
      if (t >= spec_.duration) break;
      sink(make_request(t, request.bernoulli(spec_.sequential_prob),
                        request));
      ++produced;
    }
    return produced;
  }

  // Bursty model: alternating geometric bursts and heavy-tailed idle gaps.
  // Keep the arrival-stream draw order in lockstep with
  // dry_run_arrivals().
  const double sigma = spec_.idle_sigma;
  const double rho = std::clamp(spec_.idle_log_ar1, 0.0, 0.99);
  double z = arrival.normal(0.0, sigma);  // stationary AR(1) log-deviation

  while (t < spec_.duration) {
    // ---- Idle gap ----
    const double idle_mean_s = base_idle_gap_s_ / rate_multiplier(t);
    double gap_s;
    if (spec_.pareto_tail_weight > 0.0 &&
        arrival.bernoulli(spec_.pareto_tail_weight)) {
      // Pareto branch scaled so its mean equals idle_mean_s.
      const double alpha = std::max(spec_.pareto_alpha, 1.05);
      const double scale = idle_mean_s * (alpha - 1.0) / alpha;
      gap_s = arrival.pareto(scale, alpha);
    } else {
      z = rho * z + std::sqrt(1.0 - rho * rho) * arrival.normal(0.0, sigma);
      const double mu = std::log(idle_mean_s) - sigma * sigma / 2.0;
      gap_s = std::exp(mu + z);
    }
    t += from_seconds(gap_s);
    if (t >= spec_.duration) break;

    // ---- Burst ----
    const double p_exit = 1.0 / std::max(spec_.burst_len_mean, 1.0);
    bool first = true;
    while (t < spec_.duration) {
      const bool sequential =
          !first && request.bernoulli(spec_.sequential_prob);
      sink(make_request(t, sequential, request));
      ++produced;
      first = false;
      if (arrival.bernoulli(p_exit)) break;
      t += from_seconds(
          arrival.exponential(to_seconds(spec_.burst_gap_mean)));
    }
  }
  return produced;
}

Trace SyntheticGenerator::generate_trace(double scale) {
  TraceSpec scaled = spec_;
  if (scale > 0.0 && scale < 1.0) {
    // Thin by generating fewer, equally distributed bursts.
    scaled.target_requests = std::max<std::int64_t>(
        1000, static_cast<std::int64_t>(
                  static_cast<double>(scaled.target_requests) * scale));
  }
  SyntheticGenerator gen(scaled);
  Trace out;
  out.name = spec_.name;
  out.duration = spec_.duration;
  out.records.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(scaled.target_requests * 5 / 4, 80'000'000)));
  gen.generate([&out](const TraceRecord& r) { out.records.push_back(r); });
  cursor_ = gen.cursor_;
  return out;
}

}  // namespace pscrub::trace
