// Synthetic block-trace generator.
//
// Produces arrival streams with the statistical fingerprint the paper
// measured on the SNIA traces: bursts, diurnal periodicity with daily
// spikes, autocorrelated and heavy-tailed idle gaps (CoV 8-200, decreasing
// hazard rates). See TraceSpec for the knobs and DESIGN.md for the
// substitution rationale.
//
// Generation is streamable: heavy traces (tens of millions of requests)
// can be consumed record-by-record without materializing the whole trace.
#pragma once

#include <functional>

#include "sim/rng.h"
#include "trace/record.h"
#include "trace/spec.h"

namespace pscrub::trace {

class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(TraceSpec spec);

  /// Streams records in arrival order until `spec.duration`; returns the
  /// number of records produced.
  std::int64_t generate(const std::function<void(const TraceRecord&)>& sink);

  /// Materializes the trace. `scale` in (0, 1] proportionally thins the
  /// request volume (by scaling the target) while preserving the
  /// distributional shape -- used to keep memory bounded for the heaviest
  /// disks.
  Trace generate_trace(double scale = 1.0);

  /// Activity multiplier at absolute time t (>= kMinRate); exposed for
  /// tests.
  double rate_multiplier(SimTime t) const;

  /// Mean idle gap the calibration derived (before modulation).
  double base_idle_gap_seconds() const { return base_idle_gap_s_; }

 private:
  static constexpr double kMinRate = 0.05;

  void calibrate();
  /// Replays the arrival stream (no request details) and returns the
  /// request count the real generation will produce.
  std::int64_t dry_run_arrivals();
  TraceRecord make_request(SimTime at, bool sequential, Rng& rng);

  TraceSpec spec_;
  double base_idle_gap_s_ = 1.0;
  double mean_inverse_rate_ = 1.0;
  disk::Lbn cursor_ = 0;  // sequentiality cursor
};

}  // namespace pscrub::trace
