// Trace serialization: a small CSV schema in the spirit of the SNIA
// block-I/O repository formats, so traces can be exported, inspected and
// re-imported.
//
// Schema (header line included):
//   arrival_ns,lbn,sectors,op
// with op one of R|W.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.h"

namespace pscrub::trace {

void write_csv(const Trace& trace, std::ostream& os);
void write_csv_file(const Trace& trace, const std::string& path);

/// Throws std::runtime_error on malformed input.
Trace read_csv(std::istream& is, std::string name = "trace");
Trace read_csv_file(const std::string& path);

}  // namespace pscrub::trace
