#include "trace/record.h"

namespace pscrub::trace {

std::vector<double> Trace::hourly_counts() const {
  const std::size_t hours =
      static_cast<std::size_t>((duration + kHour - 1) / kHour);
  std::vector<double> counts(hours, 0.0);
  for (const TraceRecord& r : records) {
    const auto h = static_cast<std::size_t>(r.arrival / kHour);
    if (h < counts.size()) counts[h] += 1.0;
  }
  return counts;
}

std::vector<double> Trace::interarrival_seconds() const {
  std::vector<double> gaps;
  if (records.size() < 2) return gaps;
  gaps.reserve(records.size() - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    gaps.push_back(to_seconds(records[i].arrival - records[i - 1].arrival));
  }
  return gaps;
}

}  // namespace pscrub::trace
