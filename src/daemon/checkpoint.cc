#include "daemon/checkpoint.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace pscrub::daemon {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("pscrubd checkpoint: " + what);
}

/// Pulls one whitespace-delimited int64 off the stream or dies with the
/// field's name in the message.
std::int64_t field(std::istringstream& in, const char* name) {
  std::int64_t v = 0;
  if (!(in >> v)) fail(std::string("bad or missing field '") + name + "'");
  return v;
}

std::uint64_t ufield(std::istringstream& in, const char* name) {
  std::uint64_t v = 0;
  if (!(in >> v)) fail(std::string("bad or missing field '") + name + "'");
  return v;
}

void expect_drained(std::istringstream& in, const char* what) {
  std::string extra;
  if (in >> extra) fail(std::string("trailing data on ") + what + " line");
}

}  // namespace

std::string serialize_checkpoint(const Checkpoint& ck) {
  std::ostringstream out;
  out << "pscrubd-checkpoint v" << ck.version << "\n";
  out << "now " << ck.now << "\n";
  out << "next_checkpoint " << ck.next_checkpoint << "\n";
  out << "checkpoints " << ck.checkpoints_taken << "\n";
  out << "counters " << ck.commands_applied << " " << ck.commands_rejected
      << " " << ck.status_queries << "\n";
  out << "jobs " << ck.jobs.size() << "\n";
  for (const JobCheckpoint& j : ck.jobs) {
    out << "job " << j.device << " " << j.state << " " << j.cursor << " "
        << j.passes << " " << j.next_fire << " " << j.rate << " " << j.burst
        << " " << j.tokens << " " << j.refilled_at << " " << j.extents << " "
        << j.sectors << " " << j.detections << " " << j.detected_bursts << " "
        << j.detect_delay_sum << " " << j.throttle_waits << " "
        << j.throttle_delay << " " << j.pauses << " " << j.resumes << " "
        << j.rate_changes << " " << j.starts << "\n";
    for (const auto& [burst, at] : j.detected) {
      out << "detect " << j.device << " " << burst << " " << at << "\n";
    }
  }
  out << "client " << ck.client.next_index << " " << ck.client.next_fire
      << " " << ck.client.checksum << "\n";
  out << "timeline " << ck.timeline_jsonl.size() << "\n";
  out << ck.timeline_jsonl;
  out << "end\n";
  return out.str();
}

Checkpoint parse_checkpoint(const std::string& text) {
  Checkpoint ck;
  std::size_t pos = 0;
  bool saw_end = false;
  bool saw_client = false;
  bool saw_timeline = false;
  std::size_t declared_jobs = 0;
  bool saw_jobs = false;

  auto next_line = [&](std::string& line) -> bool {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      line = text.substr(pos);
      pos = text.size();
    } else {
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  };

  std::string line;
  if (!next_line(line)) fail("empty input");
  {
    std::istringstream in(line);
    std::string magic;
    if (!(in >> magic) || magic != "pscrubd-checkpoint") {
      fail("not a pscrubd checkpoint (bad magic)");
    }
    std::string ver;
    if (!(in >> ver) || ver.size() < 2 || ver[0] != 'v') {
      fail("missing version tag");
    }
    // Strict manual digit parse: atoi would accept "v1junk" (and return 0
    // for garbage), and a crash-safety codec must reject, never coerce.
    ck.version = 0;
    for (std::size_t i = 1; i < ver.size(); ++i) {
      if (ver[i] < '0' || ver[i] > '9' || ck.version > 9999) {
        fail("malformed version tag '" + ver + "'");
      }
      ck.version = ck.version * 10 + (ver[i] - '0');
    }
    if (ck.version != kCheckpointVersion) {
      fail("unsupported version " + ver + " (this build reads v" +
           std::to_string(kCheckpointVersion) + ")");
    }
  }

  while (next_line(line)) {
    std::istringstream in(line);
    std::string key;
    if (!(in >> key)) continue;  // blank line
    if (key == "now") {
      ck.now = field(in, "now");
      expect_drained(in, "now");
    } else if (key == "next_checkpoint") {
      ck.next_checkpoint = field(in, "next_checkpoint");
      expect_drained(in, "next_checkpoint");
    } else if (key == "checkpoints") {
      ck.checkpoints_taken = field(in, "checkpoints");
      expect_drained(in, "checkpoints");
    } else if (key == "counters") {
      ck.commands_applied = field(in, "commands_applied");
      ck.commands_rejected = field(in, "commands_rejected");
      ck.status_queries = field(in, "status_queries");
      expect_drained(in, "counters");
    } else if (key == "jobs") {
      const std::int64_t n = field(in, "jobs");
      if (n < 0) fail("negative job count");
      declared_jobs = static_cast<std::size_t>(n);
      saw_jobs = true;
      expect_drained(in, "jobs");
    } else if (key == "job") {
      JobCheckpoint j;
      j.device = static_cast<int>(field(in, "device"));
      j.state = static_cast<int>(field(in, "state"));
      j.cursor = field(in, "cursor");
      j.passes = field(in, "passes");
      j.next_fire = field(in, "next_fire");
      j.rate = field(in, "rate");
      j.burst = field(in, "burst");
      j.tokens = field(in, "tokens");
      j.refilled_at = field(in, "refilled_at");
      j.extents = field(in, "extents");
      j.sectors = field(in, "sectors");
      j.detections = field(in, "detections");
      j.detected_bursts = field(in, "detected_bursts");
      j.detect_delay_sum = field(in, "detect_delay_sum");
      j.throttle_waits = field(in, "throttle_waits");
      j.throttle_delay = field(in, "throttle_delay");
      j.pauses = field(in, "pauses");
      j.resumes = field(in, "resumes");
      j.rate_changes = field(in, "rate_changes");
      j.starts = field(in, "starts");
      expect_drained(in, "job");
      ck.jobs.push_back(std::move(j));
    } else if (key == "detect") {
      const std::int64_t device = field(in, "detect device");
      const std::int64_t burst = field(in, "detect burst");
      const SimTime at = field(in, "detect at");
      expect_drained(in, "detect");
      if (ck.jobs.empty() || device != ck.jobs.back().device) {
        fail("detect line for device " + std::to_string(device) +
             " outside its job block");
      }
      if (burst < 0 || at < 0) fail("detect line with negative fields");
      ck.jobs.back().detected.emplace_back(burst, at);
    } else if (key == "client") {
      ck.client.next_index = field(in, "client next_index");
      ck.client.next_fire = field(in, "client next_fire");
      ck.client.checksum = ufield(in, "client checksum");
      expect_drained(in, "client");
      saw_client = true;
    } else if (key == "timeline") {
      const std::int64_t bytes = field(in, "timeline bytes");
      expect_drained(in, "timeline");
      if (bytes < 0) fail("negative timeline length");
      const std::size_t n = static_cast<std::size_t>(bytes);
      if (pos + n > text.size()) fail("truncated timeline section");
      ck.timeline_jsonl = text.substr(pos, n);
      pos += n;
      saw_timeline = true;
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      fail("unknown record '" + key + "'");
    }
  }

  if (!saw_end) fail("missing 'end' sentinel (truncated checkpoint?)");
  if (!saw_jobs) fail("missing 'jobs' header");
  if (!saw_client) fail("missing 'client' record");
  if (!saw_timeline) fail("missing 'timeline' record");
  if (ck.jobs.size() != declared_jobs) {
    fail("job count mismatch: header says " + std::to_string(declared_jobs) +
         ", found " + std::to_string(ck.jobs.size()));
  }
  if (ck.now < 0) fail("negative snapshot time");
  return ck;
}

std::string read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail("cannot open '" + path + "': " + std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) fail("cannot read '" + path + "'");
  if (text.empty()) fail("'" + path + "' is empty");
  return text;
}

void write_checkpoint_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    fail("cannot create '" + tmp + "': " + std::strerror(errno));
  }
  const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (wrote != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    fail("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename '" + tmp + "' over '" + path +
         "': " + std::strerror(errno));
  }
}

}  // namespace pscrub::daemon
