// Versioned scrub-progress checkpoints for pscrubd (src/daemon).
//
// A checkpoint is a complete, self-contained snapshot of the control
// plane between two events: per-scrub cursors and policy state (job
// state machine, token-bucket fill, absolute next-fire times), operator
// client position and status checksum, command counters, and the live
// timeline (embedded as JSONL). Restoring it into a fresh daemon at the
// snapshot's sim time replays the remainder of the run byte-identically
// to a run that was never interrupted -- the crash-safety contract
// test_daemon.cc and the CI kill harness enforce.
//
// The wire form is a line-oriented text format opened by a version line
// ("pscrubd-checkpoint v1") and closed by an "end" sentinel, so a
// truncated file (crash mid-write) parses as an error rather than as a
// shorter run. All fields are integers: no floating-point state crosses
// the checkpoint boundary, which is what makes resume exact. Version
// bumps are append-only in spirit: a parser rejects versions it does not
// know rather than guessing (see DESIGN.md section 14 for the rules).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace pscrub::daemon {

/// The current (and only) checkpoint format version.
inline constexpr int kCheckpointVersion = 1;

/// One scrub's snapshot. `cursor` is the linear step index within the
/// current pass (core::ScheduleView::extent_at's argument); the bucket
/// fields are the token bucket's exact integer state; `next_fire` is the
/// ABSOLUTE sim time of the pending fire (-1 when not armed, e.g.
/// paused), so a restored run re-enters the original event schedule
/// instead of re-deriving it from "now".
struct JobCheckpoint {
  int device = 0;
  int state = 0;  // JobState as int
  std::int64_t cursor = 0;
  std::int64_t passes = 0;
  SimTime next_fire = -1;
  std::int64_t rate = 0;   // sectors/second cap (0 = uncapped)
  std::int64_t burst = 0;  // bucket depth, sectors
  std::int64_t tokens = 0;
  SimTime refilled_at = 0;
  std::int64_t extents = 0;
  std::int64_t sectors = 0;
  std::int64_t detections = 0;
  std::int64_t detected_bursts = 0;
  SimTime detect_delay_sum = 0;
  std::int64_t throttle_waits = 0;
  SimTime throttle_delay = 0;
  std::int64_t pauses = 0;
  std::int64_t resumes = 0;
  std::int64_t rate_changes = 0;
  std::int64_t starts = 0;
  /// Detected fault bursts: (burst index, detection time). Undetected
  /// bursts are not persisted -- they re-derive from the fault plan (a
  /// pure function of the config) and are re-scanned on replay.
  std::vector<std::pair<std::int64_t, SimTime>> detected;
};

/// Operator-client snapshot: the next command index (commands are a pure
/// function of the index, so this is the whole generator state), the
/// absolute time of the pending command (-1 once the budget is spent),
/// and the running FNV checksum over every status response -- making the
/// command protocol itself part of the byte-identity contract.
struct ClientCheckpoint {
  std::int64_t next_index = 0;
  SimTime next_fire = -1;
  std::uint64_t checksum = 0;
};

struct Checkpoint {
  int version = kCheckpointVersion;
  /// Sim time the snapshot was taken at.
  SimTime now = 0;
  /// Absolute time of the next periodic checkpoint (-1 = none pending).
  SimTime next_checkpoint = -1;
  /// Checkpoints taken so far, including this one.
  std::int64_t checkpoints_taken = 0;
  std::int64_t commands_applied = 0;
  std::int64_t commands_rejected = 0;
  std::int64_t status_queries = 0;
  std::vector<JobCheckpoint> jobs;
  ClientCheckpoint client;
  /// The live timeline at snapshot time, as to_jsonl() bytes (empty when
  /// the run has no timeline wired).
  std::string timeline_jsonl;
};

/// Renders `ck` in the v1 wire format.
std::string serialize_checkpoint(const Checkpoint& ck);

/// Parses a serialize_checkpoint() image. Throws std::runtime_error on
/// an unknown version, malformed or missing fields, out-of-range
/// indices, or a missing "end" sentinel (truncated file).
Checkpoint parse_checkpoint(const std::string& text);

/// Reads a whole checkpoint file. Throws std::runtime_error when the
/// file is missing, unreadable, or empty.
std::string read_checkpoint_file(const std::string& path);

/// Writes `text` to `path` atomically: a sibling temp file is written,
/// flushed, and renamed over the target, so a crash mid-checkpoint
/// leaves the previous checkpoint intact instead of a torn file. Throws
/// std::runtime_error on I/O failure.
void write_checkpoint_file(const std::string& path, const std::string& text);

}  // namespace pscrub::daemon
