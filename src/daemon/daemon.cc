#include "daemon/daemon.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "disk/geometry.h"
#include "fault/fault_plan.h"
#include "fleet/fleet.h"
#include "obs/timeline_io.h"

namespace pscrub::daemon {

// ---------------------------------------------------------------------------
// TokenBucket

TokenBucket::TokenBucket(std::int64_t rate_sectors_per_s,
                         std::int64_t burst_sectors,
                         std::int64_t min_burst_sectors)
    : rate_(rate_sectors_per_s),
      burst_(std::max(burst_sectors, min_burst_sectors)) {
  // Start full: the first extent of a fresh run is never throttled.
  tokens_ = burst_ * kSecond;
}

void TokenBucket::refill(SimTime now) {
  if (rate_ <= 0 || now <= refilled_at_) {
    refilled_at_ = std::max(refilled_at_, now);
    return;
  }
  const SimTime dt = now - refilled_at_;
  const std::int64_t cap = burst_ * kSecond;
  // rate_ * dt overflows for long idle spans; compare against the time it
  // takes to top up instead of computing the unbounded product.
  const SimTime fill_dt = (cap - tokens_ + rate_ - 1) / rate_;
  if (dt >= fill_dt) {
    tokens_ = cap;
  } else {
    tokens_ += rate_ * dt;
  }
  refilled_at_ = now;
}

SimTime TokenBucket::acquire(SimTime now, std::int64_t sectors) {
  if (rate_ <= 0 || sectors <= 0) return now;
  refill(now);
  const std::int64_t cost = sectors * kSecond;
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return now;
  }
  const std::int64_t deficit = cost - tokens_;
  const SimTime wait = (deficit + rate_ - 1) / rate_;
  const SimTime ready = now + wait;
  refill(ready);
  tokens_ -= cost;  // >= 0: the refill just covered the deficit
  return ready;
}

void TokenBucket::set_rate(SimTime now, std::int64_t rate_sectors_per_s,
                           std::int64_t burst_sectors,
                           std::int64_t min_burst_sectors) {
  refill(now);  // settle accrual under the old rate first
  rate_ = rate_sectors_per_s;
  burst_ = std::max(burst_sectors, min_burst_sectors);
  tokens_ = std::min(tokens_, burst_ * kSecond);
  refilled_at_ = now;
}

// ---------------------------------------------------------------------------
// Names

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kRunning:
      return "running";
    case JobState::kPaused:
      return "paused";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDone:
      return "done";
  }
  return "unknown";
}

const char* to_string(CommandKind k) {
  switch (k) {
    case CommandKind::kStatus:
      return "status";
    case CommandKind::kPause:
      return "pause";
    case CommandKind::kResume:
      return "resume";
    case CommandKind::kSetRate:
      return "set-rate";
    case CommandKind::kCancel:
      return "cancel";
    case CommandKind::kStart:
      return "start";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// OperatorClient

namespace {
/// Decorrelates the command-content stream from the spacing stream.
constexpr std::uint64_t kSpacingSalt = 0x517cc1b727220a95ULL;
/// set-rate draws land on multiples of this (sectors/second).
constexpr std::int64_t kRateQuantum = 1024;
}  // namespace

OperatorClient::OperatorClient(Simulator& sim, Daemon& daemon,
                               const exp::DaemonSpec& spec)
    : sim_(sim), daemon_(daemon), spec_(spec) {
  event_ = sim_.add_persistent([this] { fire(); });
}

void OperatorClient::start() {
  next_index_ = 0;
  arm_next(sim_.now());
}

void OperatorClient::restore(const ClientCheckpoint& ck) {
  if (ck.next_index < 0) {
    throw std::runtime_error("pscrubd checkpoint: negative client index");
  }
  next_index_ = ck.next_index;
  checksum_ = ck.checksum;
  next_fire_ = ck.next_fire;
  if (next_fire_ >= 0) sim_.arm(event_, next_fire_);
}

ClientCheckpoint OperatorClient::snapshot() const {
  ClientCheckpoint ck;
  ck.next_index = next_index_;
  ck.next_fire = next_fire_;
  ck.checksum = checksum_;
  return ck;
}

Command OperatorClient::command_at(std::int64_t index) const {
  const std::uint64_t h =
      exp::task_seed(spec_.client_seed, static_cast<std::size_t>(index));
  Command c;
  c.device = static_cast<int>(
      h % static_cast<std::uint64_t>(daemon_.devices()));
  // Mix: half the traffic is status polling; the rest retunes and
  // interrupts. Heavy pause/resume churn is the point -- it stresses the
  // state machine the checkpoints must capture.
  const std::uint64_t roll = (h >> 24) % 100;
  if (roll < 50) {
    c.kind = CommandKind::kStatus;
  } else if (roll < 65) {
    c.kind = CommandKind::kPause;
  } else if (roll < 80) {
    c.kind = CommandKind::kResume;
  } else if (roll < 95) {
    c.kind = CommandKind::kSetRate;
  } else if (roll < 98) {
    c.kind = CommandKind::kCancel;
  } else {
    c.kind = CommandKind::kStart;
  }
  c.rate = (1 + static_cast<std::int64_t>((h >> 40) % 64)) * kRateQuantum;
  return c;
}

void OperatorClient::fold(std::uint64_t v) {
  // FNV-1a over the 8 bytes of v: order-sensitive on purpose -- a
  // reordered or replay-divergent status stream changes the checksum.
  for (int i = 0; i < 8; ++i) {
    checksum_ ^= (v >> (8 * i)) & 0xffu;
    checksum_ *= 1099511628211ULL;
  }
}

void OperatorClient::fire() {
  next_fire_ = -1;
  const std::int64_t index = next_index_;
  ++next_index_;
  const Command cmd = command_at(index);
  const CommandOutcome out = daemon_.apply(cmd);
  fold(static_cast<std::uint64_t>(index));
  fold(out.ok ? 1u : 0u);
  if (cmd.kind == CommandKind::kStatus && out.ok) {
    const JobStatus st = daemon_.status(cmd.device);
    fold(static_cast<std::uint64_t>(st.device));
    fold(static_cast<std::uint64_t>(st.state));
    fold(static_cast<std::uint64_t>(st.passes));
    fold(static_cast<std::uint64_t>(st.cursor));
    fold(static_cast<std::uint64_t>(st.rate));
    fold(static_cast<std::uint64_t>(st.detections));
    fold(static_cast<std::uint64_t>(st.eta));
  }
  arm_next(sim_.now());
}

void OperatorClient::arm_next(SimTime from) {
  if (next_index_ >= spec_.client_commands) {
    next_fire_ = -1;
    return;
  }
  const std::uint64_t h =
      exp::task_seed(spec_.client_seed ^ kSpacingSalt,
                     static_cast<std::size_t>(next_index_));
  const SimTime base = std::max<SimTime>(spec_.client_interval, 2);
  const SimTime gap =
      base / 2 + static_cast<SimTime>(h % static_cast<std::uint64_t>(base));
  // Odd-nanosecond grid: operator commands can never tie with daemon
  // work (even grid), so replay order is unambiguous.
  next_fire_ = (from + std::max<SimTime>(gap, 1)) | 1;
  sim_.arm(event_, next_fire_);
}

// ---------------------------------------------------------------------------
// Daemon

Daemon::Daemon(Simulator& sim, const exp::ScenarioConfig& config,
               obs::Timeline* timeline)
    : sim_(sim), config_(config) {
  exp::validate_scenario(config_);
  if (config_.daemon.devices <= 0) {
    throw std::invalid_argument(
        "Daemon: config.daemon.devices must be > 0 (daemon mode)");
  }
  const exp::DaemonSpec& d = config_.daemon;
  const disk::DiskProfile p = config_.disk.profile();
  const std::int64_t total_sectors =
      disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
          .total_sectors();
  schedule_ = config_.scrubber.strategy.view(total_sectors);

  checkpoint_interval_ = d.checkpoint_interval;
  checkpoint_interval_ += checkpoint_interval_ & 1;  // even grid

  exp::FleetSpec util_spec;
  util_spec.util_min = d.util_min;
  util_spec.util_max = d.util_max;
  util_spec.util_seed = d.util_seed;

  jobs_.reserve(static_cast<std::size_t>(d.devices));
  for (std::int64_t dev = 0; dev < d.devices; ++dev) {
    ScrubJob job;
    job.device = static_cast<int>(dev);
    job.utilization = fleet::member_utilization(util_spec, dev);
    SimTime step = fleet::effective_step(d.pacing, job.utilization);
    step += step & 1;  // even grid
    job.step_interval = step;
    job.bucket = TokenBucket(d.rate_sectors_per_s, d.burst_sectors,
                             schedule_.request_sectors);
    if (config_.fault.enabled) {
      fault::DiskFaultPlan plan = fault::build_disk_fault_plan(
          config_.fault, dev, total_sectors, config_.run_for);
      job.bursts = std::move(plan.bursts);
    }
    job.detect_at.assign(job.bursts.size(), -1);
    jobs_.push_back(std::move(job));
  }
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    jobs_[j].event = sim_.add_persistent([this, j] { fire_job(j); });
  }
  checkpoint_event_ = sim_.add_persistent([this] { fire_checkpoint(); });

  if (d.client_commands > 0) {
    client_ = std::make_unique<OperatorClient>(sim_, *this, config_.daemon);
  }

  if (timeline != nullptr && timeline->enabled() && config_.timeline.enabled) {
    prefix_ = config_.timeline.prefix.empty() ? config_.label
                                              : config_.timeline.prefix;
    if (!prefix_.empty()) timeline_ = timeline;
  }
}

Daemon::~Daemon() {
  for (ScrubJob& job : jobs_) sim_.remove(job.event);
  sim_.remove(checkpoint_event_);
}

void Daemon::wire_series() {
  if (timeline_ == nullptr) return;
  obs::Timeline& tl = *timeline_;
  using Kind = obs::Timeline::SeriesKind;
  const std::string base = prefix_ + ".pscrubd";
  commands_series_ = tl.series(base + ".commands", Kind::kCounter);
  rejected_series_ = tl.series(base + ".commands.rejected", Kind::kCounter);
  checkpoints_series_ = tl.series(base + ".checkpoints", Kind::kCounter);
  for (ScrubJob& job : jobs_) {
    const std::string dev = base + ".dev" + std::to_string(job.device);
    job.sectors_series = tl.series(dev + ".sectors", Kind::kCounter);
    job.progress_series = tl.series(dev + ".progress.fraction", Kind::kGauge);
    job.detections_series = tl.series(dev + ".detections", Kind::kCounter);
    job.throttle_series = tl.series(dev + ".throttle_waits", Kind::kCounter);
    job.slowdown_series = tl.series(dev + ".slowdown", Kind::kGauge);
    job.events_name = dev + ".events";
  }
  wired_ = true;
}

void Daemon::start() {
  wire_series();
  const SimTime now = sim_.now();
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    schedule_job(j, now + jobs_[j].step_interval);
  }
  if (checkpoint_interval_ > 0) {
    next_checkpoint_ = now + checkpoint_interval_;
    sim_.arm(checkpoint_event_, next_checkpoint_);
  }
  if (client_) client_->start();
}

void Daemon::restore(const Checkpoint& ck) {
  if (ck.jobs.size() != jobs_.size()) {
    throw std::runtime_error(
        "pscrubd checkpoint: device count mismatch: checkpoint has " +
        std::to_string(ck.jobs.size()) + ", config has " +
        std::to_string(jobs_.size()));
  }
  if (sim_.now() != ck.now) {
    throw std::runtime_error(
        "pscrubd checkpoint: simulator clock (" +
        std::to_string(sim_.now()) + ") must equal the snapshot time (" +
        std::to_string(ck.now) + ") before restore");
  }
  commands_applied_ = ck.commands_applied;
  commands_rejected_ = ck.commands_rejected;
  status_queries_ = ck.status_queries;
  checkpoints_ = ck.checkpoints_taken;
  next_checkpoint_ = ck.next_checkpoint;

  const std::int64_t spp = schedule_.steps_per_pass();
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobCheckpoint& jc = ck.jobs[j];
    ScrubJob& job = jobs_[j];
    if (jc.device != job.device) {
      throw std::runtime_error("pscrubd checkpoint: job " +
                               std::to_string(j) + " names device " +
                               std::to_string(jc.device));
    }
    if (jc.state < 0 || jc.state > static_cast<int>(JobState::kDone)) {
      throw std::runtime_error("pscrubd checkpoint: bad job state " +
                               std::to_string(jc.state));
    }
    if (jc.cursor < 0 || jc.cursor >= spp || jc.passes < 0) {
      throw std::runtime_error(
          "pscrubd checkpoint: cursor out of range for this geometry "
          "(checkpoint from a different config?)");
    }
    job.state = static_cast<JobState>(jc.state);
    job.cursor = jc.cursor;
    job.passes = jc.passes;
    job.bucket = TokenBucket(jc.rate, jc.burst, schedule_.request_sectors);
    job.bucket.restore(jc.tokens, jc.refilled_at);
    job.stats.extents = jc.extents;
    job.stats.sectors = jc.sectors;
    job.stats.detections = jc.detections;
    job.stats.detected_bursts = jc.detected_bursts;
    job.stats.detect_delay_sum = jc.detect_delay_sum;
    job.stats.throttle_waits = jc.throttle_waits;
    job.stats.throttle_delay = jc.throttle_delay;
    job.stats.pauses = jc.pauses;
    job.stats.resumes = jc.resumes;
    job.stats.rate_changes = jc.rate_changes;
    job.stats.starts = jc.starts;
    std::fill(job.detect_at.begin(), job.detect_at.end(), SimTime{-1});
    for (const auto& [burst, at] : jc.detected) {
      if (burst < 0 ||
          burst >= static_cast<std::int64_t>(job.detect_at.size())) {
        throw std::runtime_error(
            "pscrubd checkpoint: detect index out of range");
      }
      job.detect_at[static_cast<std::size_t>(burst)] = at;
    }
    // Absolute re-arm: the restored run re-enters the ORIGINAL event
    // schedule instead of re-deriving one from "now" -- the heart of the
    // byte-identity guarantee.
    job.next_fire = jc.next_fire;
    if (job.next_fire >= 0) sim_.arm(jobs_[j].event, job.next_fire);
  }
  if (next_checkpoint_ >= 0) {
    sim_.arm(checkpoint_event_, next_checkpoint_);
  }
  if (client_) client_->restore(ck.client);

  if (timeline_ != nullptr) {
    // Reset to the configured base window, then merge the embedded
    // snapshot: merge() coarsens the live width up to the checkpoint's
    // without touching base_window_ns, so the final export's meta line
    // matches an uninterrupted run byte-for-byte.
    timeline_->configure(timeline_->config());
    if (!ck.timeline_jsonl.empty()) {
      obs::Timeline scratch;
      const obs::TimelineLoadResult r =
          obs::load_timeline_jsonl(ck.timeline_jsonl, scratch);
      if (!r) {
        throw std::runtime_error(
            "pscrubd checkpoint: embedded timeline: " + r.error);
      }
      timeline_->merge(scratch);
    }
  }
  wire_series();
  // A crash before the NEXT periodic checkpoint restores from this one
  // again.
  last_checkpoint_ = serialize_checkpoint(ck);
}

void Daemon::schedule_job(std::size_t index, SimTime earliest) {
  ScrubJob& job = jobs_[index];
  const core::ScrubExtent e = schedule_.extent_at(job.cursor);
  const SimTime ready = job.bucket.acquire(earliest, e.sectors);
  SimTime next = earliest;
  if (ready > next) {
    ++job.stats.throttle_waits;
    job.stats.throttle_delay += ready - next;
    if (wired_) timeline_->add(job.throttle_series, sim_.now(), 1.0);
    next = ready;
  }
  next += next & 1;  // even grid
  job.next_fire = next;
  sim_.arm(job.event, next);
}

void Daemon::fire_job(std::size_t index) {
  ScrubJob& job = jobs_[index];
  job.next_fire = -1;
  if (job.state != JobState::kRunning) return;
  const SimTime now = sim_.now();
  const core::ScrubExtent e = schedule_.extent_at(job.cursor);
  ++job.stats.extents;
  job.stats.sectors += e.sectors;
  scan(job, e, now);

  ++job.cursor;
  bool pass_done = false;
  if (job.cursor >= schedule_.steps_per_pass()) {
    job.cursor = 0;
    ++job.passes;
    pass_done = true;
  }

  const std::int64_t target = spec().target_passes;
  if (wired_) {
    timeline_->add(job.sectors_series, now, static_cast<double>(e.sectors));
    const double spp = static_cast<double>(schedule_.steps_per_pass());
    double fraction;
    if (target > 0) {
      fraction = std::min(
          1.0, (static_cast<double>(job.passes) * spp +
                static_cast<double>(job.cursor)) /
                   (static_cast<double>(target) * spp));
    } else {
      fraction = static_cast<double>(job.cursor) / spp;
    }
    timeline_->set_gauge(job.progress_series, now, fraction);
    const double sd = fleet::slowdown_model(
        job.utilization, spec().pacing.request_service,
        effective_interval(job.device));
    timeline_->set_gauge(job.slowdown_series, now, sd);
    timeline_->digest(prefix_ + ".pscrubd.fg_latency_ms")
        .observe(to_milliseconds(spec().pacing.request_service) * sd);
    if (pass_done) {
      job_event(job, now,
                "pass " + std::to_string(job.passes) + " complete");
    }
  }

  if (target > 0 && job.passes >= target) {
    job.state = JobState::kDone;
    job_event(job, now, "done");
    return;
  }
  schedule_job(index, now + job.step_interval);
}

void Daemon::scan(ScrubJob& job, const core::ScrubExtent& extent,
                  SimTime now) {
  for (std::size_t b = 0; b < job.bursts.size(); ++b) {
    if (job.detect_at[b] >= 0) continue;
    const core::LseBurst& burst = job.bursts[b];
    if (burst.occurred > now) continue;
    bool hit = false;
    for (const disk::Lbn s : burst.sectors) {
      if (s >= extent.lbn && s < extent.lbn + extent.sectors) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;
    // First probe into the burst: with scrub_on_detection semantics the
    // whole burst is credited now (the scrubber reads the neighborhood
    // once any sector errors), matching core::evaluate_mlet.
    job.detect_at[b] = now;
    ++job.stats.detected_bursts;
    job.stats.detections +=
        static_cast<std::int64_t>(burst.sectors.size());
    job.stats.detect_delay_sum += now - burst.occurred;
    if (wired_) {
      timeline_->add(job.detections_series, now,
                     static_cast<double>(burst.sectors.size()));
      timeline_->digest(prefix_ + ".pscrubd.detect_delay_hours")
          .observe(to_seconds(now - burst.occurred) / 3600.0);
      job_event(job, now,
                "burst " + std::to_string(b) + " detected (" +
                    std::to_string(burst.sectors.size()) + " sectors)");
    }
  }
}

void Daemon::fire_checkpoint() {
  const SimTime now = sim_.now();
  ++checkpoints_;
  next_checkpoint_ = now + checkpoint_interval_;
  // Record the marker BEFORE snapshotting so the embedded timeline
  // carries it -- a restored run must not lose its own checkpoint's
  // marks.
  if (wired_) {
    timeline_->add(checkpoints_series_, now, 1.0);
    timeline_->event(prefix_ + ".pscrubd.events", now, "checkpoint");
  }
  last_checkpoint_ = serialize_checkpoint(snapshot());
  if (!spec().checkpoint_path.empty()) {
    write_checkpoint_file(spec().checkpoint_path, last_checkpoint_);
  }
  sim_.arm(checkpoint_event_, next_checkpoint_);
}

Checkpoint Daemon::snapshot() const {
  Checkpoint ck;
  ck.now = sim_.now();
  ck.next_checkpoint = next_checkpoint_;
  ck.checkpoints_taken = checkpoints_;
  ck.commands_applied = commands_applied_;
  ck.commands_rejected = commands_rejected_;
  ck.status_queries = status_queries_;
  ck.jobs.reserve(jobs_.size());
  for (const ScrubJob& job : jobs_) {
    JobCheckpoint jc;
    jc.device = job.device;
    jc.state = static_cast<int>(job.state);
    jc.cursor = job.cursor;
    jc.passes = job.passes;
    jc.next_fire = job.next_fire;
    jc.rate = job.bucket.rate();
    jc.burst = job.bucket.burst();
    jc.tokens = job.bucket.tokens();
    jc.refilled_at = job.bucket.refilled_at();
    jc.extents = job.stats.extents;
    jc.sectors = job.stats.sectors;
    jc.detections = job.stats.detections;
    jc.detected_bursts = job.stats.detected_bursts;
    jc.detect_delay_sum = job.stats.detect_delay_sum;
    jc.throttle_waits = job.stats.throttle_waits;
    jc.throttle_delay = job.stats.throttle_delay;
    jc.pauses = job.stats.pauses;
    jc.resumes = job.stats.resumes;
    jc.rate_changes = job.stats.rate_changes;
    jc.starts = job.stats.starts;
    for (std::size_t b = 0; b < job.detect_at.size(); ++b) {
      if (job.detect_at[b] >= 0) {
        jc.detected.emplace_back(static_cast<std::int64_t>(b),
                                 job.detect_at[b]);
      }
    }
    ck.jobs.push_back(std::move(jc));
  }
  if (client_) ck.client = client_->snapshot();
  if (timeline_ != nullptr) ck.timeline_jsonl = timeline_->to_jsonl();
  return ck;
}

CommandOutcome Daemon::apply(const Command& cmd) {
  const SimTime now = sim_.now();
  bool ok = false;
  if (cmd.device >= 0 && cmd.device < devices()) {
    const std::size_t index = static_cast<std::size_t>(cmd.device);
    ScrubJob& job = jobs_[index];
    switch (cmd.kind) {
      case CommandKind::kStatus:
        ++status_queries_;
        ok = true;
        break;
      case CommandKind::kPause:
        if (job.state == JobState::kRunning) {
          job.state = JobState::kPaused;
          if (job.next_fire >= 0) {
            sim_.cancel(job.event);
            job.next_fire = -1;
          }
          ++job.stats.pauses;
          job_event(job, now, "pause");
          ok = true;
        }
        break;
      case CommandKind::kResume:
        if (job.state == JobState::kPaused) {
          job.state = JobState::kRunning;
          ++job.stats.resumes;
          job_event(job, now, "resume");
          schedule_job(index, now + job.step_interval);
          ok = true;
        }
        break;
      case CommandKind::kCancel:
        if (job.state == JobState::kRunning ||
            job.state == JobState::kPaused) {
          if (job.next_fire >= 0) {
            sim_.cancel(job.event);
            job.next_fire = -1;
          }
          job.state = JobState::kCancelled;
          job_event(job, now, "cancel");
          ok = true;
        }
        break;
      case CommandKind::kStart:
        if (job.state == JobState::kCancelled) {
          job.cursor = 0;
          job.passes = 0;
          job.state = JobState::kRunning;
          ++job.stats.starts;
          job_event(job, now, "start");
          schedule_job(index, now + job.step_interval);
          ok = true;
        }
        break;
      case CommandKind::kSetRate:
        if (job.state != JobState::kDone && cmd.rate >= 0) {
          job.bucket.set_rate(now, cmd.rate, spec().burst_sectors,
                              schedule_.request_sectors);
          ++job.stats.rate_changes;
          job_event(job, now, "set-rate " + std::to_string(cmd.rate));
          ok = true;
        }
        break;
    }
  }
  if (ok) {
    ++commands_applied_;
  } else {
    ++commands_rejected_;
  }
  if (wired_) {
    timeline_->add(commands_series_, now, 1.0);
    if (!ok) timeline_->add(rejected_series_, now, 1.0);
  }
  return {ok};
}

const ScrubJob& Daemon::job(int device) const {
  if (device < 0 || device >= devices()) {
    throw std::out_of_range("Daemon::job: device " + std::to_string(device) +
                            " outside [0, " + std::to_string(devices()) +
                            ")");
  }
  return jobs_[static_cast<std::size_t>(device)];
}

SimTime Daemon::effective_interval(int device) const {
  const ScrubJob& j = job(device);
  SimTime step = j.step_interval;
  const std::int64_t r = j.bucket.rate();
  if (r > 0) {
    // Steady-state token refill time for one full extent.
    const SimTime throttled =
        (schedule_.request_sectors * kSecond + r - 1) / r;
    step = std::max(step, throttled);
  }
  return step;
}

SimTime Daemon::eta(const ScrubJob& j) const {
  if (j.state == JobState::kDone || j.state == JobState::kCancelled) {
    return 0;
  }
  const std::int64_t spp = schedule_.steps_per_pass();
  std::int64_t remaining = spp - j.cursor;
  if (spec().target_passes > 0) {
    if (j.passes >= spec().target_passes) return 0;
    remaining += (spec().target_passes - 1 - j.passes) * spp;
  }
  return remaining * effective_interval(j.device);
}

JobStatus Daemon::status(int device) const {
  const ScrubJob& j = job(device);
  JobStatus st;
  st.device = j.device;
  st.state = j.state;
  st.passes = j.passes;
  st.cursor = j.cursor;
  st.steps_per_pass = schedule_.steps_per_pass();
  st.fraction = static_cast<double>(j.cursor) /
                static_cast<double>(st.steps_per_pass);
  st.rate = j.bucket.rate();
  st.detections = j.stats.detections;
  st.eta = eta(j);
  return st;
}

std::int64_t Daemon::total_extents() const {
  std::int64_t total = 0;
  for (const ScrubJob& j : jobs_) total += j.stats.extents;
  return total;
}

DaemonResult Daemon::result() const {
  DaemonResult r;
  r.label = config_.label;
  r.ran_for = config_.run_for;
  r.jobs.reserve(jobs_.size());
  double detect_hours_sum = 0.0;
  std::int64_t detect_burst_total = 0;
  for (const ScrubJob& j : jobs_) {
    DaemonResult::Job out;
    out.device = j.device;
    out.state = j.state;
    out.passes = j.passes;
    out.cursor = j.cursor;
    out.extents = j.stats.extents;
    out.sectors = j.stats.sectors;
    for (const core::LseBurst& b : j.bursts) {
      out.injected_sectors += static_cast<std::int64_t>(b.sectors.size());
    }
    out.detected_bursts = j.stats.detected_bursts;
    out.detections = j.stats.detections;
    out.mean_detect_hours =
        j.stats.detected_bursts > 0
            ? (to_seconds(j.stats.detect_delay_sum) / 3600.0) /
                  static_cast<double>(j.stats.detected_bursts)
            : 0.0;
    out.rate = j.bucket.rate();
    out.throttle_waits = j.stats.throttle_waits;
    out.throttle_delay = j.stats.throttle_delay;
    out.pauses = j.stats.pauses;
    out.resumes = j.stats.resumes;
    out.rate_changes = j.stats.rate_changes;
    out.starts = j.stats.starts;
    out.utilization = j.utilization;
    out.slowdown = fleet::slowdown_model(j.utilization,
                                         spec().pacing.request_service,
                                         effective_interval(j.device));
    r.extents += out.extents;
    r.sectors += out.sectors;
    r.injected_sectors += out.injected_sectors;
    r.detections += out.detections;
    r.detected_bursts += out.detected_bursts;
    r.throttle_waits += out.throttle_waits;
    detect_hours_sum += to_seconds(j.stats.detect_delay_sum) / 3600.0;
    detect_burst_total += j.stats.detected_bursts;
    r.jobs.push_back(out);
  }
  r.mean_detect_hours =
      detect_burst_total > 0
          ? detect_hours_sum / static_cast<double>(detect_burst_total)
          : 0.0;
  r.commands_applied = commands_applied_;
  r.commands_rejected = commands_rejected_;
  r.status_queries = status_queries_;
  r.client_issued = client_ ? client_->issued() : 0;
  r.status_checksum = client_ ? client_->checksum() : 0;
  r.checkpoints = checkpoints_;
  return r;
}

void Daemon::job_event(const ScrubJob& j, SimTime now,
                       const std::string& text) {
  if (!wired_) return;
  timeline_->event(j.events_name, now, text);
}

// ---------------------------------------------------------------------------
// Result rendering / export

void DaemonResult::export_to(obs::Registry& registry,
                             const std::string& prefix) const {
  const std::string p = prefix + ".pscrubd.";
  registry.counter(p + "devices") += static_cast<std::int64_t>(jobs.size());
  registry.counter(p + "extents") += extents;
  registry.counter(p + "sectors") += sectors;
  registry.counter(p + "lse_sectors") += injected_sectors;
  registry.counter(p + "detections") += detections;
  registry.counter(p + "detected_bursts") += detected_bursts;
  registry.counter(p + "throttle_waits") += throttle_waits;
  registry.counter(p + "commands.applied") += commands_applied;
  registry.counter(p + "commands.rejected") += commands_rejected;
  registry.counter(p + "status_queries") += status_queries;
  registry.counter(p + "checkpoints") += checkpoints;
  registry.gauge(p + "mean_detect_hours").set(mean_detect_hours);
}

std::string render_daemon_result(const DaemonResult& result) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "pscrubd %s: %zu device(s), %" PRId64 " commands applied, %"
                PRId64 " rejected, %" PRId64 " status, %" PRId64
                " checkpoint(s)\n",
                result.label.c_str(), result.jobs.size(),
                result.commands_applied, result.commands_rejected,
                result.status_queries, result.checkpoints);
  out += buf;
  for (const DaemonResult::Job& j : result.jobs) {
    std::snprintf(buf, sizeof buf,
                  "  dev%d: %s, %" PRId64 " pass(es), %" PRId64
                  " extents, %" PRId64 " sectors, detected %" PRId64
                  "/%" PRId64 " error sectors, rate %" PRId64
                  ", util %.3f, slowdown %.6g\n",
                  j.device, to_string(j.state), j.passes, j.extents,
                  j.sectors, j.detections, j.injected_sectors, j.rate,
                  j.utilization, j.slowdown);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  totals: %" PRId64 " extents, %" PRId64 " sectors, %"
                PRId64 "/%" PRId64 " error sectors detected, %" PRId64
                " throttle wait(s), mean detect %.6g h\n",
                result.extents, result.sectors, result.detections,
                result.injected_sectors, result.throttle_waits,
                result.mean_detect_hours);
  out += buf;
  std::snprintf(buf, sizeof buf, "  status checksum %016" PRIx64 "\n",
                result.status_checksum);
  out += buf;
  return out;
}

// ---------------------------------------------------------------------------
// run_daemon

namespace {

/// One in-memory incarnation of the control plane; a crash tears the
/// whole thing down (member order: sim outlives daemon).
struct World {
  Simulator sim;
  Daemon daemon;
  World(const exp::ScenarioConfig& config, obs::Timeline* timeline)
      : daemon(sim, config, timeline) {}
};

}  // namespace

DaemonResult run_daemon(const exp::ScenarioConfig& config,
                        obs::Timeline* timeline) {
  obs::Timeline* tl = timeline ? timeline : &obs::Timeline::global();
  const SimTime horizon = config.run_for;
  const SimTime crash_at = config.daemon.crash_at;

  auto world = std::make_unique<World>(config, tl);
  world->daemon.start();

  if (crash_at > 0 && crash_at < horizon) {
    world->sim.run_until(crash_at);
    // Crash: everything in memory is gone. Only the last serialized
    // checkpoint survives (and, when enabled, the timeline is rebuilt
    // from the copy embedded in it -- a real daemon's metrics exporter
    // dies with it).
    const std::string persisted = world->daemon.last_checkpoint();
    world.reset();
    world = std::make_unique<World>(config, tl);
    if (persisted.empty()) {
      // Crashed before the first checkpoint: restart from scratch.
      // Reset the timeline so pre-crash records don't double-count.
      if (tl->enabled()) tl->configure(tl->config());
      world->daemon.start();
    } else {
      const Checkpoint ck = parse_checkpoint(persisted);
      world->sim.at(ck.now, [] {});
      world->sim.run_until(ck.now);
      world->daemon.restore(ck);
    }
    world->sim.run_until(horizon);
  } else {
    world->sim.run_until(horizon);
  }
  return world->daemon.result();
}

}  // namespace pscrub::daemon
