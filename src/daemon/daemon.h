// pscrubd: a crash-safe scrub control plane over the event core.
//
// The daemon drives one paced scrub per device (exp::DaemonSpec) as a
// persistent event apiece on the shared Simulator, exposes the operator
// command protocol (start / pause / resume / cancel / status / set-rate),
// caps per-scrub bandwidth with an integer token bucket that composes
// with idleness pacing, and periodically snapshots everything into a
// versioned checkpoint (daemon/checkpoint.h). The crash-safety contract:
// a run killed at any point and resumed from its last checkpoint produces
// final results and timeline output BYTE-IDENTICAL to a run that was
// never interrupted.
//
// Determinism under concurrency is by construction, not luck:
//
//  * Daemon work (job fires, checkpoints) runs on EVEN nanoseconds; the
//    operator client fires on ODD ones. Cross-source same-instant ties
//    therefore cannot happen, so replay order is the event queue's FIFO
//    order regardless of how entities were re-armed after a restore.
//  * Job-vs-job and job-vs-checkpoint ties are benign: jobs touch only
//    per-device series and order-independent run digests, and the
//    checkpoint stores every job's absolute next_fire, so either
//    snapshot order replays to the same trajectory.
//  * No wall-clock, no floating-point accumulation in control state:
//    cursors, token buckets, and fire times are all integers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lse.h"
#include "core/schedule_view.h"
#include "daemon/checkpoint.h"
#include "exp/scenario.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "sim/simulator.h"

namespace pscrub::daemon {

/// Integer token bucket in sim-time units: `rate` is sectors/second,
/// which conveniently equals token units per nanosecond when a token
/// unit is one sector-second (sector * kSecond). All arithmetic is
/// 64-bit integer, so bucket state checkpoints and restores exactly.
class TokenBucket {
 public:
  TokenBucket() = default;
  /// rate 0 = uncapped (acquire returns `now` unchanged). The depth is
  /// clamped up so a single largest request always fits.
  TokenBucket(std::int64_t rate_sectors_per_s, std::int64_t burst_sectors,
              std::int64_t min_burst_sectors);

  /// Charges `sectors` and returns the earliest sim time the charge is
  /// covered (>= now). The charge is committed: tokens at the returned
  /// time are debited, so callers must fire the work then.
  SimTime acquire(SimTime now, std::int64_t sectors);

  /// Retunes the cap; accrued credit carries over (clamped to the new
  /// depth).
  void set_rate(SimTime now, std::int64_t rate_sectors_per_s,
                std::int64_t burst_sectors, std::int64_t min_burst_sectors);

  std::int64_t rate() const { return rate_; }
  std::int64_t burst() const { return burst_; }

  /// Exact state for checkpoints.
  std::int64_t tokens() const { return tokens_; }
  SimTime refilled_at() const { return refilled_at_; }
  void restore(std::int64_t tokens, SimTime refilled_at) {
    tokens_ = tokens;
    refilled_at_ = refilled_at;
  }

 private:
  void refill(SimTime now);

  std::int64_t rate_ = 0;   // sectors/second == token units per ns
  std::int64_t burst_ = 0;  // depth, sectors
  std::int64_t tokens_ = 0; // sector-seconds (sector * kSecond units)
  SimTime refilled_at_ = 0;
};

enum class JobState : std::uint8_t {
  kRunning = 0,
  kPaused = 1,
  kCancelled = 2,
  kDone = 3,
};

const char* to_string(JobState s);

enum class CommandKind : std::uint8_t {
  kStatus = 0,
  kPause = 1,
  kResume = 2,
  kSetRate = 3,
  kCancel = 4,
  kStart = 5,
};

const char* to_string(CommandKind k);

struct Command {
  CommandKind kind = CommandKind::kStatus;
  int device = 0;
  /// kSetRate only: the new cap in sectors/second.
  std::int64_t rate = 0;
};

struct CommandOutcome {
  /// False when the command does not apply in the job's current state
  /// (pausing a cancelled scrub, starting a running one, an out-of-range
  /// device, ...). Rejections are counted, not fatal: operators race the
  /// daemon by design.
  bool ok = false;
};

/// A status response: what the operator protocol returns and what the
/// client folds into its checksum. All control fields are integers so
/// the checksum is exact.
struct JobStatus {
  int device = 0;
  JobState state = JobState::kRunning;
  std::int64_t passes = 0;
  std::int64_t cursor = 0;
  std::int64_t steps_per_pass = 0;
  double fraction = 0.0;
  std::int64_t rate = 0;
  std::int64_t detections = 0;
  /// Sim time to reach target_passes at the current pace and cap (0 when
  /// done or cancelled). Monotone non-increasing in the rate cap.
  SimTime eta = 0;
};

struct JobStats {
  std::int64_t extents = 0;
  std::int64_t sectors = 0;
  std::int64_t detections = 0;       // error sectors detected
  std::int64_t detected_bursts = 0;
  SimTime detect_delay_sum = 0;      // per-burst first-probe delays
  std::int64_t throttle_waits = 0;   // fires delayed by the token bucket
  SimTime throttle_delay = 0;
  std::int64_t pauses = 0;
  std::int64_t resumes = 0;
  std::int64_t rate_changes = 0;
  std::int64_t starts = 0;           // operator restarts after cancel
};

/// Everything the daemon knows about one device's scrub.
struct ScrubJob {
  int device = 0;
  JobState state = JobState::kRunning;
  std::int64_t cursor = 0;  // next step within the pass (ScheduleView)
  std::int64_t passes = 0;
  SimTime next_fire = -1;   // absolute; -1 when not armed
  SimTime step_interval = 0;  // utilization-stretched idle-time pace
  double utilization = 0.0;
  TokenBucket bucket;
  std::vector<core::LseBurst> bursts;  // this device's fault plan
  std::vector<SimTime> detect_at;      // per burst; -1 = undetected
  JobStats stats;
  EventId event = 0;
  // Timeline series (0 when unwired).
  obs::Timeline::SeriesId sectors_series = 0;
  obs::Timeline::SeriesId progress_series = 0;
  obs::Timeline::SeriesId detections_series = 0;
  obs::Timeline::SeriesId throttle_series = 0;
  obs::Timeline::SeriesId slowdown_series = 0;
  std::string events_name;
};

struct DaemonResult {
  std::string label;
  SimTime ran_for = 0;

  struct Job {
    int device = 0;
    JobState state = JobState::kRunning;
    std::int64_t passes = 0;
    std::int64_t cursor = 0;
    std::int64_t extents = 0;
    std::int64_t sectors = 0;
    std::int64_t injected_sectors = 0;
    std::int64_t detected_bursts = 0;
    std::int64_t detections = 0;
    double mean_detect_hours = 0.0;
    std::int64_t rate = 0;
    std::int64_t throttle_waits = 0;
    SimTime throttle_delay = 0;
    std::int64_t pauses = 0;
    std::int64_t resumes = 0;
    std::int64_t rate_changes = 0;
    std::int64_t starts = 0;
    double utilization = 0.0;
    double slowdown = 0.0;
  };
  std::vector<Job> jobs;

  std::int64_t commands_applied = 0;
  std::int64_t commands_rejected = 0;
  std::int64_t status_queries = 0;
  std::int64_t client_issued = 0;
  std::uint64_t status_checksum = 0;
  std::int64_t checkpoints = 0;

  // Totals over jobs.
  std::int64_t extents = 0;
  std::int64_t sectors = 0;
  std::int64_t injected_sectors = 0;
  std::int64_t detections = 0;
  std::int64_t detected_bursts = 0;
  std::int64_t throttle_waits = 0;
  double mean_detect_hours = 0.0;

  /// Publishes the summary under `prefix` + ".pscrubd.". Deliberately no
  /// crash/resume wiring: snapshots must be byte-identical however the
  /// run was interrupted.
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

/// Human-readable per-device table + totals (shared by the example and
/// the CI byte-diff, so stdout is part of the determinism contract).
std::string render_daemon_result(const DaemonResult& result);

class Daemon;

/// In-sim operator: issues `client_commands` commands drawn purely from
/// (client_seed, index) -- roughly half status queries, the rest
/// pause/resume/set-rate with occasional cancel/start -- spaced about
/// client_interval apart on odd nanoseconds. Status responses fold into
/// an order-sensitive FNV checksum, putting the command protocol itself
/// under the byte-identity contract.
class OperatorClient {
 public:
  OperatorClient(Simulator& sim, Daemon& daemon,
                 const exp::DaemonSpec& spec);

  void start();
  void restore(const ClientCheckpoint& ck);
  ClientCheckpoint snapshot() const;

  /// The i-th command: a pure function of (spec.client_seed, i).
  Command command_at(std::int64_t index) const;

  std::int64_t issued() const { return next_index_; }
  std::uint64_t checksum() const { return checksum_; }

 private:
  void fire();
  void arm_next(SimTime from);
  void fold(std::uint64_t v);

  Simulator& sim_;
  Daemon& daemon_;
  const exp::DaemonSpec& spec_;
  std::int64_t next_index_ = 0;
  SimTime next_fire_ = -1;
  std::uint64_t checksum_ = 14695981039346656037ULL;  // FNV-1a offset basis
  EventId event_ = 0;
};

/// The control plane. Construct against a Simulator positioned at the
/// desired start (or restore) time, then either start() for a fresh run
/// or restore() with a parsed checkpoint; drive the Simulator to the
/// horizon; read result().
class Daemon {
 public:
  /// `timeline` may be null or disabled; series wire up only when it is
  /// enabled and the config resolves a non-empty prefix (the label when
  /// timeline.prefix is empty), mirroring run_scenario.
  Daemon(Simulator& sim, const exp::ScenarioConfig& config,
         obs::Timeline* timeline);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Fresh run: arms every job and the checkpoint/client timers at the
  /// current sim time.
  void start();

  /// Resume: adopts the checkpoint's job/client/counter state and
  /// re-arms every pending event at its ABSOLUTE checkpointed time. The
  /// simulator clock must already equal ck.now. The wired timeline is
  /// reset and re-seeded from the embedded snapshot, so post-restore
  /// recording continues the original timeline exactly.
  void restore(const Checkpoint& ck);

  /// Applies one operator command now.
  CommandOutcome apply(const Command& cmd);

  /// Status of one device's scrub (device must be in range).
  JobStatus status(int device) const;

  /// Snapshot of the full control plane at the current instant.
  Checkpoint snapshot() const;

  /// Serialized form of the most recent periodic checkpoint (empty
  /// before the first one fires).
  const std::string& last_checkpoint() const { return last_checkpoint_; }

  /// Total extents verified across jobs; the CI kill harness's trigger.
  std::int64_t total_extents() const;

  int devices() const { return static_cast<int>(jobs_.size()); }
  const ScrubJob& job(int device) const;
  const exp::DaemonSpec& spec() const { return config_.daemon; }

  /// The effective per-step pace of `device` under its utilization
  /// stretch AND its current rate cap (whichever is slower), i.e. the
  /// ETA basis.
  SimTime effective_interval(int device) const;

  DaemonResult result() const;

 private:
  void fire_job(std::size_t index);
  /// Charges the token bucket for the job's next extent and arms the
  /// fire at max(earliest, token-ready), rounded onto the even grid.
  void schedule_job(std::size_t index, SimTime earliest);
  void fire_checkpoint();
  void scan(ScrubJob& job, const core::ScrubExtent& extent, SimTime now);
  SimTime eta(const ScrubJob& job) const;
  void job_event(const ScrubJob& job, SimTime now, const std::string& text);
  /// Resolves series ids by name; idempotent, and re-run after restore()
  /// resets the timeline (configure() drops ids, merge re-creates the
  /// checkpointed series).
  void wire_series();

  Simulator& sim_;
  exp::ScenarioConfig config_;
  core::ScheduleView schedule_;
  std::vector<ScrubJob> jobs_;
  std::unique_ptr<OperatorClient> client_;

  std::int64_t commands_applied_ = 0;
  std::int64_t commands_rejected_ = 0;
  std::int64_t status_queries_ = 0;
  std::int64_t checkpoints_ = 0;
  SimTime next_checkpoint_ = -1;
  SimTime checkpoint_interval_ = 0;  // even-rounded spec value
  EventId checkpoint_event_ = 0;
  std::string last_checkpoint_;

  // Timeline wiring (null prefix = unwired).
  obs::Timeline* timeline_ = nullptr;
  std::string prefix_;
  bool wired_ = false;
  obs::Timeline::SeriesId commands_series_ = 0;
  obs::Timeline::SeriesId rejected_series_ = 0;
  obs::Timeline::SeriesId checkpoints_series_ = 0;
};

/// Builds, runs, and snapshots one daemon-mode scenario
/// (config.daemon.devices > 0; validate_scenario applies). When
/// config.daemon.crash_at is inside the run, the in-memory control plane
/// is torn down at that instant and rebuilt from its last checkpoint
/// (from scratch when none was taken yet) -- final results must match an
/// uninterrupted run byte-for-byte. nullptr `timeline` selects
/// obs::Timeline::global(), so direct callers honor PSCRUB_TIMELINE.
DaemonResult run_daemon(const exp::ScenarioConfig& config,
                        obs::Timeline* timeline = nullptr);

}  // namespace pscrub::daemon
